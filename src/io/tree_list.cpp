#include "io/tree_list.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "io/newick.h"
#include "support/error.h"
#include "support/str.h"

namespace rxc::io {

std::vector<std::string> read_tree_list(std::istream& in) {
  std::vector<std::string> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    try {
      (void)parse_newick(std::string(trimmed));  // validate
    } catch (const ParseError& e) {
      throw ParseError("tree list line " + std::to_string(lineno) + ": " +
                       e.what());
    }
    out.emplace_back(trimmed);
  }
  RXC_REQUIRE(!out.empty(), "tree list contains no trees");
  return out;
}

std::vector<std::string> read_tree_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open tree list: " + path);
  return read_tree_list(in);
}

void write_tree_list(std::ostream& out,
                     const std::vector<std::string>& newicks) {
  for (const auto& n : newicks) out << n << '\n';
}

}  // namespace rxc::io
