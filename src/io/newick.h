#pragma once
/// \file newick.h
/// Newick tree text format.  This layer parses into a plain recursive node
/// structure; tree/tree.h converts to the unrooted phylogeny representation
/// used by the likelihood code.

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace rxc::io {

struct NewickNode {
  std::string label;                 ///< taxon name (tips) or support label
  std::optional<double> length;      ///< branch length to parent
  std::vector<std::unique_ptr<NewickNode>> children;

  bool is_leaf() const { return children.empty(); }
};

/// Parses one Newick tree (terminated by ';', which may be omitted).
/// Supports quoted labels ('...'), underscores, comments in [...] (skipped),
/// and branch lengths after ':'.  Throws rxc::ParseError on syntax errors.
std::unique_ptr<NewickNode> parse_newick(const std::string& text);

/// Serializes; emits branch lengths with full double precision when present.
std::string write_newick(const NewickNode& root);

/// Number of leaves under `node`.
std::size_t leaf_count(const NewickNode& node);

}  // namespace rxc::io
