#pragma once
/// \file phylip.h
/// PHYLIP alignment reading/writing — the input format RAxML uses (the
/// paper's 42_SC workload is a PHYLIP file).  Supports both sequential and
/// interleaved layouts with relaxed (whitespace-delimited) names.

#include <iosfwd>
#include <string>
#include <vector>

#include "io/fasta.h"  // SeqRecord

namespace rxc::io {

/// Parses PHYLIP.  Auto-detects sequential vs interleaved layout.
/// Header line: "<ntaxa> <nsites>".  Throws rxc::ParseError on any
/// inconsistency (wrong counts, ragged sequences, duplicate names).
std::vector<SeqRecord> read_phylip(std::istream& in);

std::vector<SeqRecord> read_phylip_string(const std::string& text);
std::vector<SeqRecord> read_phylip_file(const std::string& path);

/// Writes relaxed sequential PHYLIP.
void write_phylip(std::ostream& out, const std::vector<SeqRecord>& records);

}  // namespace rxc::io
