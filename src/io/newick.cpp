#include "io/newick.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <sstream>

#include "support/error.h"

namespace rxc::io {
namespace {

class Lexer {
public:
  explicit Lexer(const std::string& text) : s_(text) {}

  char peek() {
    skip_space_and_comments();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  char take() {
    const char c = peek();
    if (c != '\0') ++pos_;
    return c;
  }
  void expect(char c) {
    const char got = take();
    if (got != c)
      throw ParseError(std::string("Newick: expected '") + c + "' got '" +
                       (got ? std::string(1, got) : std::string("<eof>")) +
                       "' at offset " + std::to_string(pos_));
  }

  /// Label: quoted ('...' with '' escape) or unquoted run of label chars.
  std::string label() {
    skip_space_and_comments();
    std::string out;
    if (pos_ < s_.size() && s_[pos_] == '\'') {
      ++pos_;
      while (pos_ < s_.size()) {
        if (s_[pos_] == '\'') {
          if (pos_ + 1 < s_.size() && s_[pos_ + 1] == '\'') {
            out.push_back('\'');
            pos_ += 2;
          } else {
            ++pos_;
            return out;
          }
        } else {
          out.push_back(s_[pos_++]);
        }
      }
      throw ParseError("Newick: unterminated quoted label");
    }
    while (pos_ < s_.size() && is_label_char(s_[pos_]))
      out.push_back(s_[pos_++]);
    return out;
  }

  std::optional<double> branch_length() {
    if (peek() != ':') return std::nullopt;
    take();
    skip_space_and_comments();
    const char* begin = s_.data() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) throw ParseError("Newick: missing branch length after ':'");
    pos_ += static_cast<std::size_t>(end - begin);
    return v;
  }

private:
  static bool is_label_char(char c) {
    return !std::isspace(static_cast<unsigned char>(c)) && c != '(' &&
           c != ')' && c != ',' && c != ':' && c != ';' && c != '[';
  }
  void skip_space_and_comments() {
    for (;;) {
      while (pos_ < s_.size() &&
             std::isspace(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
      if (pos_ < s_.size() && s_[pos_] == '[') {
        const auto close = s_.find(']', pos_);
        if (close == std::string::npos)
          throw ParseError("Newick: unterminated [comment]");
        pos_ = close + 1;
        continue;
      }
      return;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::unique_ptr<NewickNode> parse_subtree(Lexer& lex) {
  auto node = std::make_unique<NewickNode>();
  if (lex.peek() == '(') {
    lex.take();
    for (;;) {
      node->children.push_back(parse_subtree(lex));
      const char c = lex.take();
      if (c == ',') continue;
      if (c == ')') break;
      throw ParseError("Newick: expected ',' or ')' in children list");
    }
    node->label = lex.label();  // optional inner label
  } else {
    node->label = lex.label();
    if (node->label.empty())
      throw ParseError("Newick: empty leaf label");
  }
  node->length = lex.branch_length();
  return node;
}

void write_node(const NewickNode& node, std::ostringstream& out) {
  if (!node.children.empty()) {
    out << '(';
    for (std::size_t i = 0; i < node.children.size(); ++i) {
      if (i) out << ',';
      write_node(*node.children[i], out);
    }
    out << ')';
  }
  // Quote labels containing Newick metacharacters.
  const bool needs_quote =
      node.label.find_first_of(" (),:;[]'") != std::string::npos;
  if (needs_quote) {
    out << '\'';
    for (char c : node.label) {
      if (c == '\'') out << "''";
      else out << c;
    }
    out << '\'';
  } else {
    out << node.label;
  }
  if (node.length) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.17g", *node.length);
    out << ':' << buf;
  }
}

}  // namespace

std::unique_ptr<NewickNode> parse_newick(const std::string& text) {
  Lexer lex(text);
  auto root = parse_subtree(lex);
  if (lex.peek() == ';') lex.take();
  if (lex.peek() != '\0')
    throw ParseError("Newick: trailing characters after tree");
  return root;
}

std::string write_newick(const NewickNode& root) {
  std::ostringstream out;
  write_node(root, out);
  out << ';';
  return out.str();
}

std::size_t leaf_count(const NewickNode& node) {
  if (node.is_leaf()) return 1;
  std::size_t n = 0;
  for (const auto& c : node.children) n += leaf_count(*c);
  return n;
}

}  // namespace rxc::io
