#include "io/fasta.h"

#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "support/error.h"
#include "support/str.h"

namespace rxc::io {

std::vector<SeqRecord> read_fasta(std::istream& in) {
  std::vector<SeqRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    if (trimmed.front() == ';') continue;  // classic FASTA comment
    if (trimmed.front() == '>') {
      const std::string_view name = trim(trimmed.substr(1));
      if (name.empty()) throw ParseError("FASTA: empty sequence name");
      records.push_back({std::string(name), {}});
    } else {
      if (records.empty())
        throw ParseError("FASTA: sequence data before first '>' header");
      for (char c : trimmed)
        if (!std::isspace(static_cast<unsigned char>(c)))
          records.back().data.push_back(c);
    }
  }
  if (records.empty()) throw ParseError("FASTA: no records found");
  return records;
}

std::vector<SeqRecord> read_fasta_string(const std::string& text) {
  std::istringstream in(text);
  return read_fasta(in);
}

std::vector<SeqRecord> read_fasta_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open FASTA file: " + path);
  return read_fasta(in);
}

void write_fasta(std::ostream& out, const std::vector<SeqRecord>& records,
                 std::size_t width) {
  RXC_ASSERT(width > 0);
  for (const auto& rec : records) {
    out << '>' << rec.name << '\n';
    for (std::size_t i = 0; i < rec.data.size(); i += width)
      out << rec.data.substr(i, width) << '\n';
  }
}

}  // namespace rxc::io
