#pragma once
/// \file fasta.h
/// FASTA reading/writing.  Produces raw (name, sequence) records; encoding
/// and validation happen in seq/alignment.h.

#include <iosfwd>
#include <string>
#include <vector>

namespace rxc::io {

struct SeqRecord {
  std::string name;
  std::string data;  ///< raw characters, whitespace stripped
};

/// Parses FASTA from a stream.  Throws rxc::ParseError on malformed input
/// (text before the first '>', empty names, zero records).
std::vector<SeqRecord> read_fasta(std::istream& in);

/// Convenience: parse a whole string.
std::vector<SeqRecord> read_fasta_string(const std::string& text);

/// Reads the file at `path`.  Throws rxc::Error if it cannot be opened.
std::vector<SeqRecord> read_fasta_file(const std::string& path);

/// Writes records, wrapping sequence lines at `width` characters.
void write_fasta(std::ostream& out, const std::vector<SeqRecord>& records,
                 std::size_t width = 70);

}  // namespace rxc::io
