#include "model/gamma_math.h"

#include <cmath>

#include "support/error.h"

namespace rxc::model {

double incomplete_gamma_p(double a, double x) {
  RXC_ASSERT(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 0.0;
  const double lg = std::lgamma(a);
  if (x < a + 1.0) {
    // Series representation.
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int n = 0; n < 500; ++n) {
      ap += 1.0;
      term *= x / ap;
      sum += term;
      if (std::fabs(term) < std::fabs(sum) * 1e-16) break;
    }
    return sum * std::exp(-x + a * std::log(x) - lg);
  }
  // Continued fraction for Q(a,x), modified Lentz.
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-16) break;
  }
  const double q = std::exp(-x + a * std::log(x) - lg) * h;
  return 1.0 - q;
}

double point_normal(double p) {
  RXC_ASSERT(p > 0.0 && p < 1.0);
  // Beasley-Springer-Moro.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double point_chi2(double p, double v) {
  RXC_ASSERT(p > 0.0 && p < 1.0 && v > 0.0);
  // AS91 (Best & Roberts 1975), with Newton refinement on P(a,x).
  const double aa = 0.6931471805599453;
  const double g = std::lgamma(v / 2.0);
  const double xx = v / 2.0;
  const double c = xx - 1.0;
  double ch;
  if (v < -1.24 * std::log(p)) {
    ch = std::pow(p * xx * std::exp(g + xx * aa), 1.0 / xx);
    if (ch < 5e-7) return ch * 2.0;  // note: returns chi2 value directly
  } else if (v > 0.32) {
    const double x = point_normal(p);
    const double p1 = 2.0 / (9.0 * v);
    ch = v * std::pow(x * std::sqrt(p1) + 1.0 - p1, 3.0);
    if (ch > 2.2 * v + 6.0)
      ch = -2.0 * (std::log(1.0 - p) - c * std::log(0.5 * ch) + g);
  } else {
    ch = 0.4;
    const double a = std::log(1.0 - p);
    for (int i = 0; i < 100; ++i) {
      const double q = ch;
      const double p1 = 1.0 + ch * (4.67 + ch);
      const double p2 = ch * (6.73 + ch * (6.66 + ch));
      const double t =
          -0.5 + (4.67 + 2.0 * ch) / p1 - (6.73 + ch * (13.32 + 3.0 * ch)) / p2;
      ch -= (1.0 - std::exp(a + g + 0.5 * ch + c * aa) * p2 / p1) / t;
      if (std::fabs(q / ch - 1.0) < 1e-10) break;
    }
  }
  // Newton iterations on the incomplete gamma to polish.
  for (int i = 0; i < 50; ++i) {
    const double x = 0.5 * ch;
    const double f = incomplete_gamma_p(xx, x) - p;
    const double dens = std::exp(-x + c * std::log(x) - g) * 0.5;
    if (dens <= 0.0) break;
    const double step = f / dens;
    ch -= step;
    if (ch <= 0.0) {
      ch = (ch + step) / 2.0;
    }
    if (std::fabs(step) < 1e-12 * (1.0 + ch)) break;
  }
  return ch;
}

}  // namespace rxc::model
