#include "model/rates.h"

#include <cmath>

#include "model/gamma_math.h"
#include "support/error.h"

namespace rxc::model {

DiscreteGamma DiscreteGamma::make(double alpha, std::size_t count) {
  RXC_REQUIRE(alpha > 0.0, "gamma shape alpha must be positive");
  RXC_REQUIRE(count >= 1, "need at least one rate category");
  DiscreteGamma dg;
  dg.alpha = alpha;
  dg.weight = 1.0 / static_cast<double>(count);
  dg.rates.resize(count);
  if (count == 1) {
    dg.rates[0] = 1.0;
    return dg;
  }
  // Category mean method: boundaries at quantiles i/count of Gamma(a,a);
  // category rate = a * [P(a+1, b_{i+1}*a) - P(a+1, b_i*a)] * count / a
  // (Yang 1994, eq. 10).  Using beta = alpha so the continuous mean is 1.
  const double a = alpha;
  std::vector<double> cut(count + 1);
  cut[0] = 0.0;
  cut[count] = 1e308;
  for (std::size_t i = 1; i < count; ++i)
    cut[i] = point_gamma(static_cast<double>(i) / static_cast<double>(count),
                         a, a);
  double sum = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const double lo = incomplete_gamma_p(a + 1.0, cut[i] * a);
    const double hi =
        i + 1 == count ? 1.0 : incomplete_gamma_p(a + 1.0, cut[i + 1] * a);
    dg.rates[i] = (hi - lo) * static_cast<double>(count);
    sum += dg.rates[i];
  }
  // Renormalize to mean exactly 1 (guards quadrature rounding).
  for (double& r : dg.rates) r *= static_cast<double>(count) / sum;
  return dg;
}

CatRates CatRates::make(std::size_t count, double min_rate, double max_rate) {
  RXC_REQUIRE(count >= 1, "need at least one CAT category");
  RXC_REQUIRE(min_rate > 0.0 && max_rate > min_rate, "bad CAT rate range");
  CatRates cr;
  cr.rates.resize(count);
  if (count == 1) {
    cr.rates[0] = 1.0;
    return cr;
  }
  const double step =
      std::log(max_rate / min_rate) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i)
    cr.rates[i] = min_rate * std::exp(step * static_cast<double>(i));
  return cr;
}

void CatRates::normalize(const std::vector<int>& assignment,
                         const std::vector<double>& weights) {
  RXC_ASSERT(assignment.size() == weights.size());
  double wsum = 0.0, rsum = 0.0;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    RXC_ASSERT(assignment[i] >= 0 &&
               static_cast<std::size_t>(assignment[i]) < rates.size());
    wsum += weights[i];
    rsum += weights[i] * rates[assignment[i]];
  }
  RXC_ASSERT(wsum > 0.0 && rsum > 0.0);
  const double scale = wsum / rsum;
  for (double& r : rates) r *= scale;
}

}  // namespace rxc::model
