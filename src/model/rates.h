#pragma once
/// \file rates.h
/// Among-site rate heterogeneity: the discrete Gamma model (Yang 1994,
/// mean-per-quantile categories) and the CAT approximation RAxML uses
/// (a fixed palette of per-site rates; each site/pattern is *assigned* one
/// category — assignment lives in the likelihood module, which can score
/// candidate rates).

#include <cstddef>
#include <vector>

namespace rxc::model {

/// Discrete-Gamma rates: `count` equiprobable categories whose rates are the
/// category means of Gamma(alpha, alpha) (mean rate exactly 1).
struct DiscreteGamma {
  double alpha = 1.0;
  std::vector<double> rates;   ///< size == category count
  double weight = 0.0;         ///< per-category probability == 1/count

  static DiscreteGamma make(double alpha, std::size_t count);
};

/// CAT rate palette: `count` candidate rates spanning [min_rate, max_rate]
/// geometrically (RAxML uses up to 25).  Per-site category indices are
/// produced by rxc::lh::assign_cat_categories().
struct CatRates {
  std::vector<double> rates;

  static CatRates make(std::size_t count, double min_rate = 1.0 / 32.0,
                       double max_rate = 32.0);

  /// Rescales rates so that the weighted mean over `weights` (per-pattern
  /// counts x assignment) equals 1; keeps branch lengths comparable with
  /// the Gamma model.  `assignment[i]` indexes into rates.
  void normalize(const std::vector<int>& assignment,
                 const std::vector<double>& weights);
};

}  // namespace rxc::model
