#pragma once
/// \file dna_model.h
/// Time-reversible DNA substitution models (GTR family).
///
/// A model is defined by six exchangeability rates (AC, AG, AT, CG, CT, GT)
/// and stationary base frequencies pi.  The rate matrix is
///   Q[i][j] = s[ij] * pi[j]   (i != j),   Q[i][i] = -sum_j Q[i][j],
/// normalized so the expected substitutions per unit branch length is 1
/// (sum_i pi_i * -Q_ii == 1).  JC69, K80 and HKY85 are special cases.

#include <array>
#include <string>

#include "model/matrix4.h"

namespace rxc::model {

/// State order everywhere in this library: A=0, C=1, G=2, T=3.
enum Base : int { kA = 0, kC = 1, kG = 2, kT = 3 };

struct DnaModel {
  /// Exchangeabilities in RAxML order: AC, AG, AT, CG, CT, GT.
  std::array<double, 6> rates{1, 1, 1, 1, 1, 1};
  std::array<double, 4> freqs{0.25, 0.25, 0.25, 0.25};
  std::string name = "GTR";

  /// Normalized rate matrix Q (see file comment).
  Matrix4 rate_matrix() const;

  static DnaModel jc69();
  static DnaModel k80(double kappa);
  static DnaModel hky85(double kappa, const std::array<double, 4>& freqs);
  static DnaModel gtr(const std::array<double, 6>& rates,
                      const std::array<double, 4>& freqs);

  /// Throws rxc::Error unless rates > 0 and freqs positive summing to ~1.
  void validate() const;
};

/// Spectral decomposition of a reversible Q: Q = U diag(lambda) V with
/// V = U^{-1}.  Obtained by symmetrizing with D^{1/2} = diag(sqrt(pi)) and
/// running Jacobi on the symmetric similar matrix.  lambda[0] == 0 is the
/// stationary eigenvalue.
struct EigenSystem {
  Vector4 lambda;   ///< eigenvalues, sorted descending (lambda[0] ~ 0)
  Matrix4 u;        ///< right eigenvectors in columns
  Matrix4 v;        ///< inverse of u (rows are left eigenvectors)
  Vector4 freqs;    ///< stationary distribution (copied from the model)
};

/// Decomposes the model's rate matrix.  Throws on numerical failure.
EigenSystem decompose(const DnaModel& model);

/// P(t) = U exp(lambda * t) V.  t >= 0 in expected substitutions per site.
Matrix4 transition_matrix(const EigenSystem& es, double t);

/// First and second derivatives of P(t) w.r.t. t (used by Newton-Raphson
/// branch-length optimization).
Matrix4 transition_matrix_d1(const EigenSystem& es, double t);
Matrix4 transition_matrix_d2(const EigenSystem& es, double t);

}  // namespace rxc::model
