#include "model/eigen_n.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/error.h"

namespace rxc::model {

void jacobi_n(std::vector<double>& a, int n, std::vector<double>& eval,
              std::vector<double>& evec) {
  RXC_ASSERT(static_cast<int>(a.size()) == n * n);
  evec.assign(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) evec[i * n + i] = 1.0;

  constexpr int kMaxSweeps = 100;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j) off += a[i * n + j] * a[i * n + j];
    if (off < 1e-26) break;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::fabs(apq) < 1e-300) continue;
        const double app = a[p * n + p];
        const double aqq = a[q * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (int k = 0; k < n; ++k) {
          const double akp = a[k * n + p];
          const double akq = a[k * n + q];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + q] = s * akp + c * akq;
        }
        for (int k = 0; k < n; ++k) {
          const double apk = a[p * n + k];
          const double aqk = a[q * n + k];
          a[p * n + k] = c * apk - s * aqk;
          a[q * n + k] = s * apk + c * aqk;
        }
        for (int k = 0; k < n; ++k) {
          const double vkp = evec[k * n + p];
          const double vkq = evec[k * n + q];
          evec[k * n + p] = c * vkp - s * vkq;
          evec[k * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }
  eval.resize(n);
  for (int i = 0; i < n; ++i) eval[i] = a[i * n + i];
}

EigenSystemN decompose_n(const std::vector<double>& rates,
                         const std::vector<double>& freqs) {
  const int n = static_cast<int>(freqs.size());
  RXC_REQUIRE(n >= 2, "decompose_n: need >= 2 states");
  RXC_REQUIRE(rates.size() == static_cast<std::size_t>(n) * (n - 1) / 2,
              "decompose_n: exchangeability count != n(n-1)/2");
  double fsum = 0.0;
  for (const double f : freqs) {
    RXC_REQUIRE(f > 0.0, "decompose_n: frequencies must be positive");
    fsum += f;
  }
  RXC_REQUIRE(std::fabs(fsum - 1.0) < 1e-6,
              "decompose_n: frequencies must sum to 1");

  // Build Q.
  std::vector<double> q(static_cast<std::size_t>(n) * n, 0.0);
  std::size_t k = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j, ++k) {
      RXC_REQUIRE(rates[k] >= 0.0, "decompose_n: negative exchangeability");
      q[i * n + j] = rates[k] * freqs[j];
      q[j * n + i] = rates[k] * freqs[i];
    }
  }
  for (int i = 0; i < n; ++i) {
    double row = 0.0;
    for (int j = 0; j < n; ++j)
      if (j != i) row += q[i * n + j];
    q[i * n + i] = -row;
  }
  double mu = 0.0;
  for (int i = 0; i < n; ++i) mu -= freqs[i] * q[i * n + i];
  RXC_REQUIRE(mu > 0.0, "decompose_n: degenerate rate matrix");
  for (double& x : q) x /= mu;

  // Symmetrize and diagonalize.
  std::vector<double> sqrt_pi(n), inv_sqrt_pi(n);
  for (int i = 0; i < n; ++i) {
    sqrt_pi[i] = std::sqrt(freqs[i]);
    inv_sqrt_pi[i] = 1.0 / sqrt_pi[i];
  }
  std::vector<double> sym(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      sym[i * n + j] = sqrt_pi[i] * q[i * n + j] * inv_sqrt_pi[j];
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) {
      const double avg = 0.5 * (sym[i * n + j] + sym[j * n + i]);
      sym[i * n + j] = sym[j * n + i] = avg;
    }

  std::vector<double> eval, evec;
  jacobi_n(sym, n, eval, evec);

  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int x, int y) { return eval[x] > eval[y]; });

  EigenSystemN es;
  es.n = n;
  es.freqs = freqs;
  es.lambda.resize(n);
  es.u.resize(static_cast<std::size_t>(n) * n);
  es.v.resize(static_cast<std::size_t>(n) * n);
  for (int col = 0; col < n; ++col) {
    es.lambda[col] = eval[order[col]];
    for (int i = 0; i < n; ++i) {
      es.u[i * n + col] = inv_sqrt_pi[i] * evec[i * n + order[col]];
      es.v[col * n + i] = sqrt_pi[i] * evec[i * n + order[col]];
    }
  }
  RXC_ASSERT_MSG(std::fabs(es.lambda[0]) < 1e-8,
                 "stationary eigenvalue must be ~0");
  return es;
}

void transition_matrix_n(const EigenSystemN& es, double t, double* out) {
  RXC_ASSERT(t >= 0.0);
  const int n = es.n;
  std::vector<double> diag(n);
  for (int k = 0; k < n; ++k) diag[k] = std::exp(es.lambda[k] * t);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) out[i * n + j] = 0.0;
    for (int k = 0; k < n; ++k) {
      const double uik = es.u[i * n + k] * diag[k];
      for (int j = 0; j < n; ++j) out[i * n + j] += uik * es.v[k * n + j];
    }
  }
}

}  // namespace rxc::model
