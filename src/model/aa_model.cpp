#include "model/aa_model.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "support/error.h"
#include "support/str.h"

namespace rxc::model {

AaModel AaModel::poisson() { return {}; }

AaModel AaModel::from_paml_dat(std::istream& in, std::string name) {
  // Collect all whitespace-separated numbers; layout is fixed: 190
  // lower-triangle exchangeabilities then 20 frequencies.  (Comments after
  // the numbers, which some .dat files carry, are ignored.)
  std::vector<double> values;
  std::string token;
  while (values.size() < kAaPairs + kAaStates && in >> token) {
    try {
      std::size_t used = 0;
      const double v = std::stod(token, &used);
      if (used != token.size())
        throw ParseError("PAML dat: non-numeric token '" + token + "'");
      values.push_back(v);
    } catch (const std::invalid_argument&) {
      throw ParseError("PAML dat: non-numeric token '" + token + "'");
    }
  }
  if (values.size() < kAaPairs + kAaStates)
    throw ParseError("PAML dat: expected " +
                     std::to_string(kAaPairs + kAaStates) +
                     " numbers, found " + std::to_string(values.size()));

  AaModel m;
  m.name = std::move(name);
  // PAML stores the LOWER triangle row by row: entry (i, j) with i > j.
  // Convert to our upper-triangle (j, i) order.
  std::size_t cursor = 0;
  for (int i = 1; i < kAaStates; ++i) {
    for (int j = 0; j < i; ++j, ++cursor) {
      // upper-triangle index of pair (j, i), j < i:
      const std::size_t index =
          static_cast<std::size_t>(j) * kAaStates -
          static_cast<std::size_t>(j) * (j + 1) / 2 + (i - j - 1);
      m.rates[index] = values[cursor];
    }
  }
  double fsum = 0.0;
  for (int i = 0; i < kAaStates; ++i) {
    m.freqs[i] = values[cursor + i];
    fsum += m.freqs[i];
  }
  RXC_REQUIRE(fsum > 0.0, "PAML dat: zero frequency mass");
  for (double& f : m.freqs) f /= fsum;  // normalize rounding drift
  m.validate();
  return m;
}

AaModel AaModel::from_paml_dat_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open PAML dat file: " + path);
  // Model name from the file stem.
  const auto slash = path.find_last_of('/');
  const auto stem = path.substr(slash == std::string::npos ? 0 : slash + 1);
  return from_paml_dat(in, stem);
}

AaModel AaModel::random(Rng& rng) {
  AaModel m;
  m.name = "RANDOM";
  for (double& r : m.rates) r = rng.exponential() + 0.01;
  double sum = 0.0;
  for (double& f : m.freqs) {
    f = rng.gamma(2.0) + 0.01;
    sum += f;
  }
  for (double& f : m.freqs) f /= sum;
  return m;
}

void AaModel::validate() const {
  RXC_REQUIRE(rates.size() == kAaPairs, "AA model: wrong rate count");
  RXC_REQUIRE(freqs.size() == kAaStates, "AA model: wrong frequency count");
  double sum = 0.0;
  for (const double f : freqs) {
    RXC_REQUIRE(f > 0.0, "AA model: frequencies must be positive");
    sum += f;
  }
  RXC_REQUIRE(std::fabs(sum - 1.0) < 1e-6, "AA model: frequencies sum != 1");
  for (const double r : rates)
    RXC_REQUIRE(r >= 0.0, "AA model: negative exchangeability");
}

EigenSystemN AaModel::decompose() const {
  validate();
  return decompose_n(rates, freqs);
}

}  // namespace rxc::model
