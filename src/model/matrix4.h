#pragma once
/// \file matrix4.h
/// Tiny fixed-size 4x4 matrix used by the DNA substitution models.
/// Row-major; m[i*4+j] is row i, column j.

#include <array>
#include <cstddef>

namespace rxc::model {

using Matrix4 = std::array<double, 16>;
using Vector4 = std::array<double, 4>;

constexpr Matrix4 identity4() {
  Matrix4 m{};
  for (std::size_t i = 0; i < 4; ++i) m[i * 4 + i] = 1.0;
  return m;
}

Matrix4 multiply(const Matrix4& a, const Matrix4& b);
Vector4 multiply(const Matrix4& a, const Vector4& v);
Matrix4 transpose(const Matrix4& a);

/// Max |a[i]-b[i]|.
double max_abs_diff(const Matrix4& a, const Matrix4& b);

}  // namespace rxc::model
