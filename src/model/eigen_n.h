#pragma once
/// \file eigen_n.h
/// General N-state reversible-model machinery (runtime N), used by the
/// protein (20-state) code path.  Mirrors the fixed 4-state machinery in
/// dna_model.h: symmetrize Q with D^{1/2}, Jacobi-diagonalize, reconstruct
/// P(t) = U exp(lambda t) V.

#include <cstddef>
#include <vector>

namespace rxc::model {

/// Spectral decomposition of an NxN reversible rate matrix.
struct EigenSystemN {
  int n = 0;
  std::vector<double> lambda;  ///< n eigenvalues, descending (lambda[0] ~ 0)
  std::vector<double> u;       ///< n*n, right eigenvectors in columns
  std::vector<double> v;       ///< n*n, inverse of u
  std::vector<double> freqs;   ///< stationary distribution
};

/// Jacobi eigendecomposition of a symmetric n x n matrix (row-major in/out).
/// Eigenvalues into `eval`, orthonormal eigenvectors into the columns of
/// `evec`.  Destroys `a`.
void jacobi_n(std::vector<double>& a, int n, std::vector<double>& eval,
              std::vector<double>& evec);

/// Builds the normalized reversible rate matrix from upper-triangle
/// exchangeabilities `rates` (size n*(n-1)/2, ordered (0,1),(0,2)...,(n-2,
/// n-1)) and frequencies, then decomposes it.  Mean substitution rate
/// normalized to 1.
EigenSystemN decompose_n(const std::vector<double>& rates,
                         const std::vector<double>& freqs);

/// P(t) into `out` (n*n, row-major).
void transition_matrix_n(const EigenSystemN& es, double t, double* out);

}  // namespace rxc::model
