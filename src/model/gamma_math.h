#pragma once
/// \file gamma_math.h
/// Special functions for the discrete-Gamma rate model: regularized
/// incomplete gamma P(a,x), its inverse via the chi-square percentile
/// (Best & Roberts AS91), and the standard-normal quantile (Beasley-
/// Springer-Moro).  These are the same numerics PAML/RAxML use to build
/// mean-per-quantile Gamma rate categories.

namespace rxc::model {

/// Regularized lower incomplete gamma P(a, x) = gamma(a,x)/Gamma(a).
/// Series for x < a+1, continued fraction otherwise.  a > 0, x >= 0.
double incomplete_gamma_p(double a, double x);

/// Standard normal quantile: returns z with Phi(z) = p, 0 < p < 1.
double point_normal(double p);

/// Chi-square quantile with v degrees of freedom (AS91).
double point_chi2(double p, double v);

/// Gamma(shape=alpha, rate=beta) quantile.
inline double point_gamma(double p, double alpha, double beta) {
  return point_chi2(p, 2.0 * alpha) * 0.5 / beta;
}

}  // namespace rxc::model
