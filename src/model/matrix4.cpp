#include "model/matrix4.h"

#include <cmath>

namespace rxc::model {

Matrix4 multiply(const Matrix4& a, const Matrix4& b) {
  Matrix4 out{};
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t k = 0; k < 4; ++k) {
      const double aik = a[i * 4 + k];
      for (std::size_t j = 0; j < 4; ++j) out[i * 4 + j] += aik * b[k * 4 + j];
    }
  return out;
}

Vector4 multiply(const Matrix4& a, const Vector4& v) {
  Vector4 out{};
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) out[i] += a[i * 4 + j] * v[j];
  return out;
}

Matrix4 transpose(const Matrix4& a) {
  Matrix4 out;
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) out[j * 4 + i] = a[i * 4 + j];
  return out;
}

double max_abs_diff(const Matrix4& a, const Matrix4& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < 16; ++i)
    m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

}  // namespace rxc::model
