#pragma once
/// \file aa_model.h
/// Amino-acid (20-state) substitution models — the paper notes RAxML
/// analyzes "DNA or AA sequences"; this is the AA side of that claim.
///
/// State order follows the PAML/RAxML convention:
///   A R N D C Q E G H I L K M F P S T W Y V
///
/// Shipping hard-coded empirical matrices would mean transcribing 190
/// published constants; instead the model loads any matrix in the standard
/// PAML `.dat` layout (lower-triangle exchangeabilities + frequencies) —
/// the exact files RAxML/PAML distribute for WAG, JTT, LG, Dayhoff, mtREV,
/// etc.  The Poisson model (all exchangeabilities equal) is built in, and
/// random reversible matrices support property testing.

#include <array>
#include <iosfwd>
#include <string>
#include <vector>

#include "model/eigen_n.h"
#include "support/rng.h"

namespace rxc::model {

inline constexpr int kAaStates = 20;
inline constexpr std::size_t kAaPairs = kAaStates * (kAaStates - 1) / 2;

struct AaModel {
  /// Upper-triangle exchangeabilities, (0,1),(0,2),...,(18,19).
  std::vector<double> rates = std::vector<double>(kAaPairs, 1.0);
  std::vector<double> freqs = std::vector<double>(kAaStates, 0.05);
  std::string name = "POISSON";

  /// All exchangeabilities 1, uniform frequencies (the AA analogue of
  /// JC69).
  static AaModel poisson();

  /// Parses the PAML `.dat` format: 19 lower-triangle rows of
  /// exchangeabilities followed by the 20 equilibrium frequencies
  /// (whitespace separated; blank lines ignored).  Throws rxc::ParseError
  /// on malformed input.
  static AaModel from_paml_dat(std::istream& in, std::string name);
  static AaModel from_paml_dat_file(const std::string& path);

  /// Random reversible model (exchangeabilities ~ Exp(1), Dirichlet-ish
  /// frequencies) for property tests.
  static AaModel random(Rng& rng);

  void validate() const;
  EigenSystemN decompose() const;
};

}  // namespace rxc::model
