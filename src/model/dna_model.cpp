#include "model/dna_model.h"

#include <cmath>

#include "support/error.h"

namespace rxc::model {
namespace {

/// Jacobi eigenvalue iteration for a symmetric 4x4 matrix.
/// Returns eigenvalues in `eval` and orthonormal eigenvectors in the columns
/// of `evec`.
void jacobi4(Matrix4 a, Vector4& eval, Matrix4& evec) {
  evec = identity4();
  constexpr int kMaxSweeps = 64;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (int i = 0; i < 4; ++i)
      for (int j = i + 1; j < 4; ++j) off += a[i * 4 + j] * a[i * 4 + j];
    if (off < 1e-30) break;
    for (int p = 0; p < 4; ++p) {
      for (int q = p + 1; q < 4; ++q) {
        const double apq = a[p * 4 + q];
        if (std::fabs(apq) < 1e-300) continue;
        const double app = a[p * 4 + p];
        const double aqq = a[q * 4 + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Rotate rows/columns p and q of a.
        for (int k = 0; k < 4; ++k) {
          const double akp = a[k * 4 + p];
          const double akq = a[k * 4 + q];
          a[k * 4 + p] = c * akp - s * akq;
          a[k * 4 + q] = s * akp + c * akq;
        }
        for (int k = 0; k < 4; ++k) {
          const double apk = a[p * 4 + k];
          const double aqk = a[q * 4 + k];
          a[p * 4 + k] = c * apk - s * aqk;
          a[q * 4 + k] = s * apk + c * aqk;
        }
        // Accumulate rotation into eigenvector matrix.
        for (int k = 0; k < 4; ++k) {
          const double vkp = evec[k * 4 + p];
          const double vkq = evec[k * 4 + q];
          evec[k * 4 + p] = c * vkp - s * vkq;
          evec[k * 4 + q] = s * vkp + c * vkq;
        }
      }
    }
  }
  for (int i = 0; i < 4; ++i) eval[i] = a[i * 4 + i];
}

}  // namespace

Matrix4 DnaModel::rate_matrix() const {
  validate();
  // Fill symmetric exchangeabilities.
  const double ac = rates[0], ag = rates[1], at = rates[2];
  const double cg = rates[3], ct = rates[4], gt = rates[5];
  Matrix4 s{0,  ac, ag, at,
            ac, 0,  cg, ct,
            ag, cg, 0,  gt,
            at, ct, gt, 0};
  Matrix4 q{};
  for (int i = 0; i < 4; ++i) {
    double row = 0.0;
    for (int j = 0; j < 4; ++j) {
      if (i == j) continue;
      q[i * 4 + j] = s[i * 4 + j] * freqs[j];
      row += q[i * 4 + j];
    }
    q[i * 4 + i] = -row;
  }
  // Normalize: expected rate sum_i pi_i * (-q_ii) == 1.
  double mu = 0.0;
  for (int i = 0; i < 4; ++i) mu -= freqs[i] * q[i * 4 + i];
  RXC_ASSERT(mu > 0.0);
  for (double& x : q) x /= mu;
  return q;
}

DnaModel DnaModel::jc69() {
  DnaModel m;
  m.name = "JC69";
  return m;
}

DnaModel DnaModel::k80(double kappa) {
  DnaModel m;
  m.rates = {1, kappa, 1, 1, kappa, 1};  // transitions AG, CT get kappa
  m.name = "K80";
  return m;
}

DnaModel DnaModel::hky85(double kappa, const std::array<double, 4>& f) {
  DnaModel m = k80(kappa);
  m.freqs = f;
  m.name = "HKY85";
  return m;
}

DnaModel DnaModel::gtr(const std::array<double, 6>& r,
                       const std::array<double, 4>& f) {
  DnaModel m;
  m.rates = r;
  m.freqs = f;
  m.name = "GTR";
  return m;
}

void DnaModel::validate() const {
  double sum = 0.0;
  for (double f : freqs) {
    RXC_REQUIRE(f > 0.0, "base frequencies must be positive");
    sum += f;
  }
  RXC_REQUIRE(std::fabs(sum - 1.0) < 1e-8, "base frequencies must sum to 1");
  for (double r : rates)
    RXC_REQUIRE(r > 0.0, "exchangeability rates must be positive");
}

EigenSystem decompose(const DnaModel& model) {
  const Matrix4 q = model.rate_matrix();
  // Symmetrize: S = D^{1/2} Q D^{-1/2}, D = diag(pi).  Reversibility makes
  // S symmetric; enforce symmetry explicitly to clean rounding noise.
  Vector4 sqrt_pi, inv_sqrt_pi;
  for (int i = 0; i < 4; ++i) {
    sqrt_pi[i] = std::sqrt(model.freqs[i]);
    inv_sqrt_pi[i] = 1.0 / sqrt_pi[i];
  }
  Matrix4 sym;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      sym[i * 4 + j] = sqrt_pi[i] * q[i * 4 + j] * inv_sqrt_pi[j];
  for (int i = 0; i < 4; ++i)
    for (int j = i + 1; j < 4; ++j) {
      const double avg = 0.5 * (sym[i * 4 + j] + sym[j * 4 + i]);
      sym[i * 4 + j] = sym[j * 4 + i] = avg;
    }

  Vector4 eval;
  Matrix4 evec;
  jacobi4(sym, eval, evec);

  // Sort eigenpairs descending so lambda[0] is the ~0 stationary eigenvalue.
  std::array<int, 4> order{0, 1, 2, 3};
  for (int i = 0; i < 4; ++i)
    for (int j = i + 1; j < 4; ++j)
      if (eval[order[j]] > eval[order[i]]) std::swap(order[i], order[j]);

  EigenSystem es;
  es.freqs = model.freqs;
  for (int k = 0; k < 4; ++k) {
    es.lambda[k] = eval[order[k]];
    for (int i = 0; i < 4; ++i) {
      // U = D^{-1/2} R, V = R^T D^{1/2}.
      es.u[i * 4 + k] = inv_sqrt_pi[i] * evec[i * 4 + order[k]];
      es.v[k * 4 + i] = sqrt_pi[i] * evec[i * 4 + order[k]];
    }
  }
  RXC_ASSERT_MSG(std::fabs(es.lambda[0]) < 1e-9,
                 "stationary eigenvalue must be ~0");
  return es;
}

namespace {
Matrix4 reconstruct(const EigenSystem& es, const Vector4& diag) {
  Matrix4 p{};
  for (int i = 0; i < 4; ++i)
    for (int k = 0; k < 4; ++k) {
      const double uik = es.u[i * 4 + k] * diag[k];
      for (int j = 0; j < 4; ++j) p[i * 4 + j] += uik * es.v[k * 4 + j];
    }
  return p;
}
}  // namespace

Matrix4 transition_matrix(const EigenSystem& es, double t) {
  RXC_ASSERT(t >= 0.0);
  Vector4 e;
  for (int k = 0; k < 4; ++k) e[k] = std::exp(es.lambda[k] * t);
  return reconstruct(es, e);
}

Matrix4 transition_matrix_d1(const EigenSystem& es, double t) {
  Vector4 e;
  for (int k = 0; k < 4; ++k)
    e[k] = es.lambda[k] * std::exp(es.lambda[k] * t);
  return reconstruct(es, e);
}

Matrix4 transition_matrix_d2(const EigenSystem& es, double t) {
  Vector4 e;
  for (int k = 0; k < 4; ++k)
    e[k] = es.lambda[k] * es.lambda[k] * std::exp(es.lambda[k] * t);
  return reconstruct(es, e);
}

}  // namespace rxc::model
