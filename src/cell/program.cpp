#include "cell/program.h"

#include <sstream>

namespace rxc::cell {

namespace {

std::string hex_range(std::uint64_t lo, std::uint64_t hi) {
  std::ostringstream os;
  os << "[0x" << std::hex << lo << ",0x" << hi << ")";
  return os.str();
}

const char* signal_op_name(SignalOp op) {
  switch (op) {
    case SignalOp::kGo: return "go";
    case SignalOp::kComplete: return "complete";
    case SignalOp::kRead: return "read";
  }
  return "?";
}

}  // namespace

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kDmaGet: return "dma-get";
    case OpKind::kDmaPut: return "dma-put";
    case OpKind::kTagWait: return "tag-wait";
    case OpKind::kLsRead: return "ls-read";
    case OpKind::kLsWrite: return "ls-write";
    case OpKind::kLsReserve: return "ls-reserve";
    case OpKind::kMailboxWrite: return "mailbox-write";
    case OpKind::kMailboxRead: return "mailbox-read";
    case OpKind::kSignal: return "signal";
    case OpKind::kEpoch: return "epoch";
  }
  return "unknown-op";
}

std::string AbstractOp::to_string() const {
  std::ostringstream os;
  os << op_kind_name(kind);
  if (kind != OpKind::kEpoch) os << " spe=" << spe;
  switch (kind) {
    case OpKind::kDmaGet:
      os << " tag=" << tag << " ea" << hex_range(ea, ea + size) << " ls"
         << hex_range(ls, ls + size);
      break;
    case OpKind::kDmaPut:
      os << " tag=" << tag << " ls" << hex_range(ls, ls + size) << " ea"
         << hex_range(ea, ea + size);
      break;
    case OpKind::kTagWait:
      os << " tag=" << tag;
      break;
    case OpKind::kLsRead:
    case OpKind::kLsWrite:
      os << " ls" << hex_range(ls, ls + size);
      break;
    case OpKind::kLsReserve:
      os << " bytes=" << size;
      break;
    case OpKind::kMailboxWrite:
      os << (inbound ? " inbound" : " outbound") << " value=" << value;
      break;
    case OpKind::kMailboxRead:
      os << (inbound ? " inbound" : " outbound");
      break;
    case OpKind::kSignal:
      os << ' ' << signal_op_name(signal);
      break;
    case OpKind::kEpoch:
      break;
  }
  return os.str();
}

void Program::dma_get(int spe, int tag, std::uint64_t ea, std::uint64_t ls,
                      std::uint64_t size) {
  AbstractOp op;
  op.kind = OpKind::kDmaGet;
  op.spe = spe;
  op.tag = tag;
  op.ea = ea;
  op.ls = ls;
  op.size = size;
  ops.push_back(op);
}

void Program::dma_put(int spe, int tag, std::uint64_t ls, std::uint64_t ea,
                      std::uint64_t size) {
  AbstractOp op;
  op.kind = OpKind::kDmaPut;
  op.spe = spe;
  op.tag = tag;
  op.ea = ea;
  op.ls = ls;
  op.size = size;
  ops.push_back(op);
}

void Program::tag_wait(int spe, int tag) {
  AbstractOp op;
  op.kind = OpKind::kTagWait;
  op.spe = spe;
  op.tag = tag;
  ops.push_back(op);
}

void Program::ls_read(int spe, std::uint64_t ls, std::uint64_t size) {
  AbstractOp op;
  op.kind = OpKind::kLsRead;
  op.spe = spe;
  op.ls = ls;
  op.size = size;
  ops.push_back(op);
}

void Program::ls_write(int spe, std::uint64_t ls, std::uint64_t size) {
  AbstractOp op;
  op.kind = OpKind::kLsWrite;
  op.spe = spe;
  op.ls = ls;
  op.size = size;
  ops.push_back(op);
}

void Program::ls_reserve(int spe, std::uint64_t size) {
  AbstractOp op;
  op.kind = OpKind::kLsReserve;
  op.spe = spe;
  op.size = size;
  ops.push_back(op);
}

void Program::mailbox_write(int spe, bool inbound, std::uint32_t value) {
  AbstractOp op;
  op.kind = OpKind::kMailboxWrite;
  op.spe = spe;
  op.inbound = inbound;
  op.value = value;
  ops.push_back(op);
}

void Program::mailbox_read(int spe, bool inbound) {
  AbstractOp op;
  op.kind = OpKind::kMailboxRead;
  op.spe = spe;
  op.inbound = inbound;
  ops.push_back(op);
}

void Program::signal(int spe, SignalOp op_phase) {
  AbstractOp op;
  op.kind = OpKind::kSignal;
  op.spe = spe;
  op.signal = op_phase;
  ops.push_back(op);
}

void Program::epoch() {
  AbstractOp op;
  op.kind = OpKind::kEpoch;
  op.spe = -1;
  ops.push_back(op);
}

std::string Program::to_string() const {
  std::ostringstream os;
  for (const AbstractOp& op : ops) os << op.to_string() << '\n';
  return os.str();
}

bool op_runs_on_ppe(const AbstractOp& op) {
  switch (op.kind) {
    case OpKind::kMailboxWrite: return op.inbound;
    case OpKind::kMailboxRead: return !op.inbound;
    case OpKind::kSignal: return op.signal != SignalOp::kComplete;
    case OpKind::kEpoch: return true;
    default: return false;
  }
}

}  // namespace rxc::cell
