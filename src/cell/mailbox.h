#pragma once
/// \file mailbox.h
/// SPU mailboxes: the CBE's architected 32-bit signaling channels.  The
/// inbound (PPE -> SPU) mailbox holds four entries, the outbound (SPU ->
/// PPE) a single entry; writing to a full mailbox or reading an empty one
/// stalls on silicon — here the would-be stall is surfaced to the caller,
/// and overflow beyond the architectural depth is a hard error (the paper's
/// baseline signaling path before the direct-memory optimization, §5.2.6).

#include <cstdint>
#include <deque>

#include "cell/cost_params.h"
#include "cell/events.h"
#include "support/error.h"

namespace rxc::cell {

class Mailbox {
public:
  /// `owner`/`inbound` stamp emitted machine events (see events.h).
  explicit Mailbox(int depth, int owner = 0, bool inbound = true)
      : depth_(depth), owner_(owner), inbound_(inbound) {
    RXC_ASSERT(depth >= 1);
  }

  int depth() const { return depth_; }
  std::size_t pending() const { return entries_.size(); }
  bool full() const { return entries_.size() >= static_cast<std::size_t>(depth_); }
  bool empty() const { return entries_.empty(); }

  /// Writes an entry; the caller must have checked full() (a real writer
  /// stalls; our schedulers model that stall explicitly).
  void write(std::uint32_t value) {
    if (full()) throw HardwareError("mailbox overflow (depth " +
                                    std::to_string(depth_) + ")");
    entries_.push_back(value);
    if (EventSink* sink = event_sink())
      sink->on_mailbox(owner_, inbound_, true, value);
  }

  std::uint32_t read() {
    if (empty()) throw HardwareError("read from empty mailbox");
    const std::uint32_t v = entries_.front();
    entries_.pop_front();
    if (EventSink* sink = event_sink())
      sink->on_mailbox(owner_, inbound_, false, v);
    return v;
  }

private:
  int depth_;
  int owner_;
  bool inbound_;
  std::deque<std::uint32_t> entries_;
};

}  // namespace rxc::cell
