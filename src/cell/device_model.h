#pragma once
/// \file device_model.h
/// Declarative virtual-hardware description.  Everything that used to be a
/// compile-time constant about THE Cell machine — SPE count, local-store
/// size, DMA limits, mailbox depths, the whole CostParams cycle table — is
/// lifted into one text-serializable value, so the simulator can be *a*
/// machine instead of *the* machine: heterogeneous serving pools, what-if
/// architecture sweeps (rxc-sweep), and per-device calibration all become
/// data, mirroring BEAGLE's described-by-data resource model (PAPERS.md).
///
/// Contention semantics (the single source of truth — the old
/// ExecutorSpec.eib_contention / mailbox_contention doubles are gone):
///  * EIB: `eib_factor(active_spes)` = 1 + cost.eib_contention_per_spe x
///    (active_spes - 1).  Each additional concurrently-DMAing SPE slows
///    every port's effective bandwidth by the per-SPE coefficient; one SPE
///    sees factor 1.0 (no self-contention).
///  * Mailbox: `mailbox_factor(concurrent_workers)` = max(1, workers).
///    MMIO mailbox accesses serialize through the PPE bus interface, so W
///    concurrently-signaling workers each see W-fold signal latency.
///
/// Serialization is strict JSON (support/json_value.h): unknown keys,
/// duplicate keys, wrong types, and out-of-range values all throw
/// rxc::ConfigError.  to_string()/from_string() round-trip bitwise (doubles
/// print at %.17g).

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "cell/cost_params.h"

namespace rxc::cell {

/// Upper bound on spe_count across all device models: sizes fixed per-way
/// scratch arrays in the executor and the stride of process-unique SPU
/// event-id blocks (reserve_spu_event_base).
inline constexpr int kMaxDeviceSpes = 64;

struct DeviceModel {
  /// Stable identifier ("cell-2007", "cell-16spe-512k", ...).  Placement
  /// constraints (JobSpec.device), calibration entries (cell-sim@<name>)
  /// and sweep rows key on it.
  std::string name = "cell-2007";

  // --- geometry (the paper's machine, §4, as defaults) --------------------
  int spe_count = 8;
  int ppe_threads = 2;  ///< one PPE, two SMT hardware threads

  /// Local store per SPU; the paper's CBE has 256 KB.
  std::size_t local_store_bytes = 256 * 1024;
  /// Code footprint of the offloaded module (newview + makenewz + evaluate),
  /// reserved at the bottom of local store: the paper measures 117 KB,
  /// leaving 139 KB for stack/heap/static data.
  std::size_t offload_code_bytes = 117 * 1024;

  /// MFC DMA limits: single transfers <= 16 KB, list commands <= 2048
  /// entries, 32 tag groups.
  std::size_t dma_max_bytes = 16 * 1024;
  std::size_t dma_list_max_entries = 2048;
  int mfc_tag_count = 32;
  /// SPU command-queue depth: how many DMA commands may be in flight
  /// (issued, not yet tag-waited) per MFC before a further enqueue would
  /// stall the SPU.  The CBE's MFC holds 16 SPU-side entries.  The timing
  /// simulation does not model the stall; the static verifier bounds the
  /// schedule's worst case against it (ViolationKind::kTagQueueOverflow).
  int mfc_queue_depth = 16;

  /// Architected mailbox depths: 4-entry inbound (PPE -> SPU), 1-entry
  /// outbound (SPU -> PPE).
  int mailbox_in_depth = 4;
  int mailbox_out_depth = 1;

  /// The virtual-cycle cost table (clock, per-op latencies, EIB/mailbox
  /// contention coefficients).  See cost_params.h for provenance.
  CostParams cost;

  /// Local-store bytes available for data once the code image is resident.
  std::size_t ls_data_bytes() const {
    return local_store_bytes - offload_code_bytes;
  }

  /// Multiplicative EIB bandwidth slowdown when `active_spes` SPEs stream
  /// concurrently (>= 1.0; exactly 1.0 for a single SPE).
  double eib_factor(int active_spes) const;

  /// Multiplicative mailbox signal-latency slowdown when
  /// `concurrent_workers` processes signal concurrently (>= 1.0).
  double mailbox_factor(int concurrent_workers) const;

  /// Throws rxc::ConfigError on out-of-range or inconsistent fields (empty
  /// name, spe_count outside [1, kMaxDeviceSpes], code image >= local
  /// store, non-positive costs, ...).
  void validate() const;

  /// Strict-JSON round trip: from_string(to_string()) == *this, bitwise.
  std::string to_string() const;
  /// Parses a validated DeviceModel.  Every key is optional except "name";
  /// omitted fields keep the cell-2007 defaults.  Unknown/duplicate keys,
  /// type mismatches, malformed JSON and out-of-range values are
  /// rxc::ConfigError.
  static DeviceModel from_string(const std::string& text);

  friend bool operator==(const DeviceModel&, const DeviceModel&) = default;
};

// --- presets & registry -----------------------------------------------------

/// Built-in machine descriptions, in deterministic order:
///  * "cell-2007"       — the paper's testbed (all defaults above).
///  * "cell-16spe-512k" — a doubled machine: 16 SPEs, 512 KB local store.
///  * "cell-fast-eib"   — cell-2007 with twice the port bandwidth and a
///                        contention-free EIB.
const std::vector<DeviceModel>& device_presets();

/// Registers (or replaces) a model under its name for process-wide lookup —
/// how file-loaded configs become addressable by calibration entries and
/// job placement.  Preset names cannot be replaced.  Validates; throws
/// rxc::ConfigError.
void register_device_model(const DeviceModel& model);

/// Preset or registered model by name; nullopt when unknown.  (Returned by
/// value: the registry is shared across threads.)
std::optional<DeviceModel> find_device_model(const std::string& name);

/// find_device_model or rxc::ConfigError naming the unknown model.
DeviceModel require_device_model(const std::string& name);

/// Reads the JSON device description in `path` (DeviceModel::to_string
/// format), registers it under its name, and returns it.  Throws
/// rxc::ConfigError on an unreadable file, parse failure, or a name clash
/// with a different registered model.  The tools' --device-config plumbing.
DeviceModel load_device_model_file(const std::string& path);

}  // namespace rxc::cell
