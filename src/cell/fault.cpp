#include "cell/fault.h"

#include <cstdint>
#include <vector>

#include "support/aligned.h"

namespace rxc::cell {
namespace {

/// FNV-1a 64 over the full local store: cheap, and any corrupted byte flips
/// the digest.
std::uint64_t ls_digest(const LocalStore& ls) {
  const std::byte* bytes = ls.data(0, ls.capacity());
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < ls.capacity(); ++i) {
    h ^= static_cast<std::uint64_t>(bytes[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Everything a fault could corrupt, captured bit-for-bit.
struct Snapshot {
  std::uint64_t ls_hash = 0;
  std::size_t ls_watermark = 0;
  VCycles now = 0.0;
  SpuCounters spu_counters;
  MfcCounters mfc_counters;
  std::vector<VCycles> tag_done;  ///< one per configured MFC tag
  std::size_t inbox_pending = 0;
  std::size_t outbox_pending = 0;

  static Snapshot capture(const Spu& spu) {
    Snapshot s;
    s.ls_hash = ls_digest(spu.ls());
    s.ls_watermark = spu.ls().allocated();
    s.now = spu.now();
    s.spu_counters = spu.counters();
    s.mfc_counters = spu.mfc().counters();
    s.tag_done.resize(static_cast<std::size_t>(spu.mfc().tag_count()));
    for (int tag = 0; tag < spu.mfc().tag_count(); ++tag)
      s.tag_done[static_cast<std::size_t>(tag)] = spu.mfc().completion(tag);
    s.inbox_pending = spu.inbox().pending();
    s.outbox_pending = spu.outbox().pending();
    return s;
  }

  /// Empty string when identical; otherwise names the first difference.
  std::string diff(const Snapshot& o) const {
    if (ls_hash != o.ls_hash) return "local-store contents changed";
    if (ls_watermark != o.ls_watermark) return "allocator watermark moved";
    if (now != o.now) return "SPU clock advanced";
    if (spu_counters.busy_cycles != o.spu_counters.busy_cycles ||
        spu_counters.dma_stall_cycles != o.spu_counters.dma_stall_cycles ||
        spu_counters.kernel_invocations != o.spu_counters.kernel_invocations)
      return "SPU counters changed";
    if (mfc_counters.transfers != o.mfc_counters.transfers ||
        mfc_counters.bytes != o.mfc_counters.bytes ||
        mfc_counters.list_transfers != o.mfc_counters.list_transfers ||
        mfc_counters.stall_cycles != o.mfc_counters.stall_cycles)
      return "MFC counters changed";
    for (std::size_t tag = 0; tag < tag_done.size(); ++tag)
      if (tag_done[tag] != o.tag_done[tag])
        return "tag " + std::to_string(tag) + " completion time moved";
    if (inbox_pending != o.inbox_pending) return "inbound mailbox changed";
    if (outbox_pending != o.outbox_pending) return "outbound mailbox changed";
    return {};
  }
};

}  // namespace

const char* fault_name(Fault fault) {
  switch (fault) {
    case Fault::kDmaZeroSize: return "dma-zero-size";
    case Fault::kDmaIllegalSize: return "dma-illegal-size";
    case Fault::kDmaOversize: return "dma-oversize";
    case Fault::kDmaMisalignedEa: return "dma-misaligned-ea";
    case Fault::kDmaMisalignedLs: return "dma-misaligned-ls";
    case Fault::kDmaSmallMisaligned: return "dma-small-misaligned";
    case Fault::kDmaListTooLong: return "dma-list-too-long";
    case Fault::kLocalStoreOverflow: return "local-store-overflow";
    case Fault::kLocalStoreOob: return "local-store-oob";
    case Fault::kMailboxInOverflow: return "mailbox-in-overflow";
    case Fault::kMailboxOutOverflow: return "mailbox-out-overflow";
    case Fault::kMailboxUnderflow: return "mailbox-underflow";
  }
  return "unknown-fault";
}

FaultOutcome inject_fault(Spu& spu, Fault fault) {
  RXC_REQUIRE(spu.inbox().empty() && spu.outbox().empty(),
              "inject_fault requires drained mailboxes");

  // Legal setup runs BEFORE the snapshot so only the violation itself is
  // under scrutiny.
  aligned_vector<std::byte> host(64);
  const LsAddr scratch = spu.ls().alloc(64);
  int filled_in = 0, filled_out = 0;
  if (fault == Fault::kMailboxInOverflow) {
    while (!spu.inbox().full()) spu.inbox().write(0xfeedu), ++filled_in;
  } else if (fault == Fault::kMailboxOutOverflow) {
    while (!spu.outbox().full()) spu.outbox().write(0xfeedu), ++filled_out;
  }

  const Snapshot before = Snapshot::capture(spu);
  FaultOutcome outcome;
  Mfc& mfc = spu.mfc();
  const VCycles now = spu.now();
  try {
    switch (fault) {
      case Fault::kDmaZeroSize:
        mfc.get(scratch, host.data(), 0, 0, now);
        break;
      case Fault::kDmaIllegalSize:
        mfc.get(scratch, host.data(), 24, 0, now);
        break;
      case Fault::kDmaOversize:
        mfc.get(scratch, host.data(), spu.device().dma_max_bytes + 16, 0, now);
        break;
      case Fault::kDmaMisalignedEa:
        mfc.get(scratch, host.data() + 4, 32, 0, now);
        break;
      case Fault::kDmaMisalignedLs:
        mfc.get(scratch + 4, host.data(), 32, 0, now);
        break;
      case Fault::kDmaSmallMisaligned:
        mfc.put(host.data() + 2, scratch, 4, 0, now);
        break;
      case Fault::kDmaListTooLong: {
        const std::vector<DmaListEntry> list(
            spu.device().dma_list_max_entries + 1,
            DmaListEntry{host.data(), 16});
        mfc.get_list(scratch, list, 0, now);
        break;
      }
      case Fault::kLocalStoreOverflow:
        (void)spu.ls().alloc(spu.ls().free_bytes() + 16);
        break;
      case Fault::kLocalStoreOob:
        (void)spu.ls().data(
            static_cast<LsAddr>(spu.ls().capacity() - 8), 16);
        break;
      case Fault::kMailboxInOverflow:
        spu.inbox().write(0xdeadu);
        break;
      case Fault::kMailboxOutOverflow:
        spu.outbox().write(0xdeadu);
        break;
      case Fault::kMailboxUnderflow:
        (void)spu.inbox().read();
        break;
    }
    outcome.error = std::string(fault_name(fault)) +
                    ": violation completed without HardwareError";
  } catch (const HardwareError& e) {
    outcome.trapped = true;
    outcome.error = e.what();
  }

  const std::string diff = before.diff(Snapshot::capture(spu));
  outcome.state_intact = diff.empty();
  if (!diff.empty())
    outcome.error += std::string("; state corrupted: ") + diff;

  // Undo the legal setup: drain our fill values and release the scratch
  // buffer (the executors reset the allocator per invocation anyway).
  while (filled_in-- > 0) (void)spu.inbox().read();
  while (filled_out-- > 0) (void)spu.outbox().read();
  spu.ls().reset();
  return outcome;
}

const char* race_hazard_name(RaceHazard hazard) {
  switch (hazard) {
    case RaceHazard::kSkippedTagWait: return "skipped-tag-wait";
    case RaceHazard::kPrematureBufferReuse: return "premature-buffer-reuse";
    case RaceHazard::kOverlappingEaPut: return "overlapping-ea-put";
    case RaceHazard::kBrokenSignalOrder: return "broken-signal-order";
    case RaceHazard::kStalePartialRead: return "stale-partial-read";
  }
  return "unknown-hazard";
}

Program hazard_program(RaceHazard hazard, const DeviceModel& device) {
  // Where a post-reset LocalStore::alloc lands: the 16-byte-aligned top of
  // the code image (local_store.cpp's watermark arithmetic).
  const std::uint64_t buf = round_up(device.offload_code_bytes, kDmaAlignment);
  Program prog;

  switch (hazard) {
    case RaceHazard::kSkippedTagWait:
      // The double-buffering bug the paper's Opt IV must avoid: compute
      // starts on a strip whose inbound DMA was never tag-waited.
      prog.ls_reserve(0, buf + 64);
      prog.dma_get(0, 0, /*ea=*/0, buf, 64);
      prog.ls_read(0, buf, 64);
      prog.tag_wait(0, 0);
      break;
    case RaceHazard::kPrematureBufferReuse:
      // The outbound half of the same bug: the kernel rewrites a buffer
      // while the previous strip's put is still reading it.
      prog.ls_reserve(0, buf + 64);
      prog.dma_put(0, 1, buf, /*ea=*/0, 64);
      prog.ls_write(0, buf, 64);
      prog.tag_wait(0, 1);
      break;
    case RaceHazard::kOverlappingEaPut:
      // Two SPEs target the same result range inside one epoch: a broken
      // loop-level-parallel partition (no primitive orders the two MFCs).
      prog.ls_reserve(0, buf + 64);
      prog.ls_reserve(1, buf + 64);
      prog.dma_put(0, 2, buf, /*ea=*/0, 64);
      prog.dma_put(1, 2, buf, /*ea=*/32, 64);
      prog.tag_wait(0, 2);
      prog.tag_wait(1, 2);
      break;
    case RaceHazard::kBrokenSignalOrder:
      // Opt VI gone wrong: the PPE reads the completion word with no
      // intervening SPE completion store ordering it.
      prog.signal(0, SignalOp::kGo);
      prog.signal(0, SignalOp::kRead);
      break;
    case RaceHazard::kStalePartialRead:
      // Opt VII gone wrong: a consumer fetches a partial-likelihood vector
      // whose producing put was never waited on — it may read stale bytes.
      prog.ls_reserve(0, buf + 64);
      prog.ls_reserve(1, buf + 64);
      prog.dma_put(0, 3, buf, /*ea=*/0, 64);
      prog.dma_get(1, 4, /*ea=*/0, buf, 64);
      prog.tag_wait(0, 3);
      prog.tag_wait(1, 4);
      break;
  }

  prog.epoch();
  return prog;
}

void plant_hazard(CellMachine& machine, RaceHazard hazard) {
  RXC_REQUIRE(machine.spe_count() >= 2,
              "plant_hazard needs a machine with at least 2 SPEs");
  Spu& spe0 = machine.spe(0);
  Spu& spe1 = machine.spe(1);
  spe0.ls().reset();
  spe1.ls().reset();
  aligned_vector<std::byte> host(128);
  EventSink* sink = event_sink();

  // Interpret the abstract program against the live machine: DMA and tag
  // waits through the real MFC (abstract EAs become offsets into the
  // scratch arena), kernel windows and signal phases straight into the
  // sink.  The static verifier consumes the same Program object, so the
  // dynamic and static analyses are cross-validated by construction.
  for (const AbstractOp& op : hazard_program(hazard, machine.device()).ops) {
    Spu& spu = machine.spe(op.spe < 0 ? 0 : op.spe);
    switch (op.kind) {
      case OpKind::kDmaGet:
        spu.mfc().get(static_cast<LsAddr>(op.ls), host.data() + op.ea,
                      op.size, op.tag, spu.now());
        break;
      case OpKind::kDmaPut:
        spu.mfc().put(host.data() + op.ea, static_cast<LsAddr>(op.ls),
                      op.size, op.tag, spu.now());
        break;
      case OpKind::kTagWait:
        spu.wait_dma(op.tag);
        break;
      case OpKind::kLsRead:
        if (sink != nullptr)
          sink->on_ls_read(spu.id(), static_cast<LsAddr>(op.ls), op.size,
                           spu.now(), spu.now());
        break;
      case OpKind::kLsWrite:
        if (sink != nullptr)
          sink->on_ls_write(spu.id(), static_cast<LsAddr>(op.ls), op.size,
                            spu.now(), spu.now());
        break;
      case OpKind::kLsReserve:
        // Allocator bookkeeping only; the planted buffers sit exactly where
        // a post-reset alloc would place them, so there is nothing to do.
        break;
      case OpKind::kMailboxWrite:
        (op.inbound ? spu.inbox() : spu.outbox()).write(op.value);
        break;
      case OpKind::kMailboxRead:
        (void)(op.inbound ? spu.inbox() : spu.outbox()).read();
        break;
      case OpKind::kSignal:
        if (sink != nullptr) sink->on_signal(spu.id(), op.signal);
        break;
      case OpKind::kEpoch:
        // Resets precede the closing join, matching the executors'
        // per-invocation allocator discipline.
        spe0.ls().reset();
        spe1.ls().reset();
        if (sink != nullptr) sink->on_epoch();
        break;
    }
  }
}

}  // namespace rxc::cell
