#pragma once
/// \file fault.h
/// Deliberate hardware-rule violations with corruption detection.
///
/// On real Cell silicon a misaligned DMA, an oversized transfer, a
/// local-store overflow or a mailbox depth violation corrupts the running
/// image or raises a bus error — there is no graceful path.  The simulator's
/// contract is stricter and testable: every such violation must throw
/// HardwareError BEFORE mutating any simulator state (no bytes moved, no
/// counters bumped, no clock advanced).  This layer injects each violation
/// class against a live SPU, snapshots the full observable state around the
/// attempt, and reports both whether the fault was trapped and whether the
/// state survived bit-for-bit.

#include <array>
#include <cstdint>
#include <string>

#include "cell/program.h"
#include "cell/spu.h"

namespace rxc::cell {

/// One architectural rule to violate.
enum class Fault {
  kDmaZeroSize,          ///< transfer of 0 bytes
  kDmaIllegalSize,       ///< 24 B: neither 1/2/4/8 nor a multiple of 16
  kDmaOversize,          ///< block transfer beyond the configured MFC limit
  kDmaMisalignedEa,      ///< block transfer, main-memory address % 16 != 0
  kDmaMisalignedLs,      ///< block transfer, local-store address % 16 != 0
  kDmaSmallMisaligned,   ///< 4 B transfer without natural alignment
  kDmaListTooLong,       ///< DMA list beyond the configured entry limit
  kLocalStoreOverflow,   ///< allocation beyond the configured local store
  kLocalStoreOob,        ///< raw access crossing the local-store end
  kMailboxInOverflow,    ///< fifth write to the 4-deep inbound mailbox
  kMailboxOutOverflow,   ///< second write to the 1-deep outbound mailbox
  kMailboxUnderflow,     ///< read from an empty mailbox
};

inline constexpr std::array<Fault, 12> kAllFaults = {
    Fault::kDmaZeroSize,        Fault::kDmaIllegalSize,
    Fault::kDmaOversize,        Fault::kDmaMisalignedEa,
    Fault::kDmaMisalignedLs,    Fault::kDmaSmallMisaligned,
    Fault::kDmaListTooLong,     Fault::kLocalStoreOverflow,
    Fault::kLocalStoreOob,      Fault::kMailboxInOverflow,
    Fault::kMailboxOutOverflow, Fault::kMailboxUnderflow,
};

const char* fault_name(Fault fault);

/// What happened when a fault was injected.
struct FaultOutcome {
  bool trapped = false;       ///< HardwareError was thrown
  bool state_intact = false;  ///< observable SPU state identical afterwards
  std::string error;          ///< what() of the trapped error (or diagnosis)

  /// The contract: violation trapped AND nothing corrupted.
  bool ok() const { return trapped && state_intact; }
};

/// Injects `fault` against the SPU and verifies the trap-before-mutate
/// contract.  The observable state compared around the attempt covers the
/// full local-store contents, the allocator watermark, the SPU clock and
/// counters, the MFC tag completion times and counters, and both mailbox
/// occupancies.  Requires both mailboxes empty on entry (the executor's
/// steady state); the local-store allocator is restored via reset() before
/// returning, matching the per-invocation reset the executors perform.
FaultOutcome inject_fault(Spu& spu, Fault fault);

/// One class of concurrency hazard the race detector (src/analysis) must
/// catch.  Unlike `Fault`, these sequences are architecturally *legal* —
/// every individual operation succeeds — but the missing synchronization
/// edge makes the combination a data race on real silicon.
enum class RaceHazard {
  kSkippedTagWait,        ///< kernel reads a get's target, wait skipped
  kPrematureBufferReuse,  ///< kernel rewrites a buffer an un-drained put reads
  kOverlappingEaPut,      ///< two SPEs put to the same main-memory range
  kBrokenSignalOrder,     ///< PPE reads completion with no SPE store
  kStalePartialRead,      ///< get sources bytes an un-waited put covers
};

inline constexpr std::array<RaceHazard, 5> kAllRaceHazards = {
    RaceHazard::kSkippedTagWait,       RaceHazard::kPrematureBufferReuse,
    RaceHazard::kOverlappingEaPut,     RaceHazard::kBrokenSignalOrder,
    RaceHazard::kStalePartialRead,
};

const char* race_hazard_name(RaceHazard hazard);

/// The racy-but-legal op sequence for `hazard` as an abstract Program over
/// SPEs 0 and 1 of the machine `device` describes.  This is the single
/// source of truth for the planted sequences: plant_hazard interprets it
/// against a live machine (the dynamic detector's view) and the static
/// verifier consumes it directly — so by construction the two analyses see
/// the same program, and "every planted class flagged both ways" is a
/// property of the checkers, not of two hand-kept copies.  Effective
/// addresses are offsets into a 128-byte scratch arena; local-store
/// addresses start at the device's code-image watermark, exactly where a
/// post-reset alloc would land.
Program hazard_program(RaceHazard hazard, const DeviceModel& device = {});

/// Executes hazard_program(hazard, machine.device()) against the machine's
/// first SPE(s), through the same primitives the executors use (real DMA
/// commands plus the events.h hooks for kernel windows and signals).  Every
/// operation succeeds; the armed event sink is expected to flag the race.
/// Resets the involved SPEs' local-store allocators, drains all planted
/// transfers, and closes the epoch before returning, so consecutive plants
/// are independent.  Functional no-op (beyond those resets) when no event
/// sink is armed.
void plant_hazard(CellMachine& machine, RaceHazard hazard);

}  // namespace rxc::cell
