#include "cell/invariants.h"

#include <cmath>
#include <sstream>

namespace rxc::cell {
namespace {

/// Busy + stall may exceed the clock only by accumulated FP rounding; one
/// part in 10^9 of the clock is far above any legitimate rounding drift and
/// far below any real bookkeeping bug.
constexpr double kClockSlack = 1e-9;

void add(InvariantReport& report, const Spu& spu, const std::string& what) {
  report.violations.push_back("spe" + std::to_string(spu.id()) + ": " + what);
}

void check_value(InvariantReport& report, const Spu& spu, const char* name,
                 double value) {
  if (!std::isfinite(value))
    add(report, spu, std::string(name) + " is not finite");
  else if (value < 0.0)
    add(report, spu,
        std::string(name) + " is negative (" + std::to_string(value) + ")");
}

void check_mailbox(InvariantReport& report, const Spu& spu, const char* name,
                   const Mailbox& box) {
  if (box.pending() > static_cast<std::size_t>(box.depth()))
    add(report, spu,
        std::string(name) + " holds " + std::to_string(box.pending()) +
            " entries, architected depth " + std::to_string(box.depth()));
}

}  // namespace

std::string InvariantReport::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i) os << '\n';
    os << violations[i];
  }
  return os.str();
}

InvariantReport check_invariants(const Spu& spu) {
  InvariantReport report;

  check_value(report, spu, "clock", spu.now());
  check_value(report, spu, "busy_cycles", spu.counters().busy_cycles);
  check_value(report, spu, "dma_stall_cycles",
              spu.counters().dma_stall_cycles);
  const double accounted =
      spu.counters().busy_cycles + spu.counters().dma_stall_cycles;
  if (accounted > spu.now() * (1.0 + kClockSlack) + kClockSlack)
    add(report, spu,
        "busy + stall (" + std::to_string(accounted) +
            ") exceeds the clock (" + std::to_string(spu.now()) + ")");

  const LocalStore& ls = spu.ls();
  if (ls.allocated() < ls.code_bytes())
    add(report, spu, "local-store watermark below the code image");
  if (ls.allocated() > ls.capacity())
    add(report, spu, "local-store watermark beyond capacity");

  check_mailbox(report, spu, "inbound mailbox", spu.inbox());
  check_mailbox(report, spu, "outbound mailbox", spu.outbox());

  const Mfc& mfc = spu.mfc();
  for (int tag = 0; tag < mfc.tag_count(); ++tag)
    check_value(report, spu, "tag completion", mfc.completion(tag));
  const MfcCounters& mc = mfc.counters();
  check_value(report, spu, "mfc stall_cycles", mc.stall_cycles);
  if (mc.bytes < mc.transfers)
    add(report, spu, "MFC moved fewer bytes than transfers (min 1 B each)");
  if (mc.bytes > mc.transfers * spu.device().dma_max_bytes)
    add(report, spu,
        "MFC byte counter exceeds transfers x the configured max DMA size (" +
            std::to_string(spu.device().dma_max_bytes) + " B)");

  return report;
}

InvariantReport check_invariants(const CellMachine& machine) {
  InvariantReport report;
  for (int i = 0; i < machine.spe_count(); ++i) {
    InvariantReport one = check_invariants(machine.spe(i));
    report.violations.insert(report.violations.end(),
                             one.violations.begin(), one.violations.end());
  }
  return report;
}

InvariantReport check_quiescent(const Spu& spu) {
  InvariantReport report = check_invariants(spu);
  if (!spu.inbox().empty())
    add(report, spu,
        "inbound mailbox not drained (" +
            std::to_string(spu.inbox().pending()) + " pending)");
  if (!spu.outbox().empty())
    add(report, spu,
        "outbound mailbox not drained (" +
            std::to_string(spu.outbox().pending()) + " pending)");
  for (int tag = 0; tag < spu.mfc().tag_count(); ++tag) {
    const VCycles done = spu.mfc().completion(tag);
    if (done > spu.now() * (1.0 + kClockSlack) + kClockSlack)
      add(report, spu,
          "tag " + std::to_string(tag) + " completes at " +
              std::to_string(done) + ", after the SPU clock " +
              std::to_string(spu.now()) + " (in-flight DMA leaked)");
  }
  return report;
}

InvariantReport check_quiescent(const CellMachine& machine) {
  InvariantReport report;
  for (int i = 0; i < machine.spe_count(); ++i) {
    InvariantReport one = check_quiescent(machine.spe(i));
    report.violations.insert(report.violations.end(),
                             one.violations.begin(), one.violations.end());
  }
  return report;
}

}  // namespace rxc::cell
