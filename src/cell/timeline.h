#pragma once
/// \file timeline.h
/// Resource timelines for the scheduling simulation: a resource serves one
/// segment at a time; acquire() returns the start time of a segment that
/// becomes ready at `ready` and runs for `duration`.  The schedulers in
/// src/core compose PPE-thread and SPE timelines with per-task event
/// streams into a makespan (greedy list scheduling — what the paper's
/// runtime actually does).

#include <algorithm>
#include <span>
#include <vector>

#include "cell/mfc.h"  // VCycles
#include "support/error.h"

namespace rxc::cell {

class ResourceTimeline {
public:
  /// Serves a segment: starts at max(ready, free time); returns start.
  VCycles acquire(VCycles ready, VCycles duration) {
    RXC_ASSERT(duration >= 0.0);
    const VCycles start = std::max(ready, free_at_);
    free_at_ = start + duration;
    busy_ += duration;
    return start;
  }

  VCycles free_at() const { return free_at_; }
  VCycles busy() const { return busy_; }

private:
  VCycles free_at_ = 0.0;
  VCycles busy_ = 0.0;
};

/// Picks the timeline that can start a segment earliest (FIFO tie-break),
/// acquires it, and reports which one was used.
inline VCycles acquire_earliest(std::span<ResourceTimeline> pool,
                                VCycles ready, VCycles duration,
                                std::size_t* which = nullptr) {
  RXC_ASSERT(!pool.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < pool.size(); ++i)
    if (pool[i].free_at() < pool[best].free_at()) best = i;
  if (which != nullptr) *which = best;
  return pool[best].acquire(ready, duration);
}

}  // namespace rxc::cell
