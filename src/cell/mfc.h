#pragma once
/// \file mfc.h
/// Memory Flow Controller: the SPE's DMA engine.
///
/// Functional semantics: transfers actually move bytes between host memory
/// ("main memory") and the local store.  Architectural rules are enforced
/// exactly as documented for the CBE (§4 of the paper) but against the
/// owning DeviceModel's configured limits: transfer sizes of 1, 2, 4, 8
/// bytes or multiples of 16 up to dma_max_bytes; 128-bit alignment on both
/// addresses for block transfers; DMA lists of up to dma_list_max_entries.
///
/// Timing semantics: each command completes at
///   issue_time + startup + bytes / (bandwidth / contention)
/// per tag group; wait(tag) advances the SPU clock to the group's
/// completion and reports the stall — double buffering shows up naturally
/// as wait() returning 0 because computation covered the latency.

#include <cstdint>
#include <span>
#include <vector>

#include "cell/device_model.h"
#include "cell/events.h"
#include "cell/local_store.h"

namespace rxc::cell {

struct DmaListEntry {
  const void* ea = nullptr;  ///< main-memory address
  std::uint32_t size = 0;
};

struct MfcCounters {
  std::uint64_t transfers = 0;
  std::uint64_t bytes = 0;
  std::uint64_t list_transfers = 0;
  VCycles stall_cycles = 0.0;
};

class Mfc {
public:
  /// `owner` is the SPE id stamped on emitted machine events.  `device`
  /// supplies both the DMA limits and the cost table; it must outlive the
  /// Mfc (Spu points it at its machine's model).
  Mfc(LocalStore& ls, const DeviceModel& device, int owner = 0);

  /// EIB contention factor (>= 1): effective bandwidth = nominal / factor.
  /// Set by the scheduler according to how many SPEs it runs concurrently
  /// (DeviceModel::eib_factor is the canonical curve).
  void set_contention(double factor);

  int tag_count() const { return static_cast<int>(tag_done_.size()); }

  /// DMA get: main memory -> local store.  `now` is the SPU issue time.
  void get(LsAddr dst, const void* src, std::size_t size, int tag,
           VCycles now);
  /// DMA put: local store -> main memory.
  void put(void* dst, LsAddr src, std::size_t size, int tag, VCycles now);
  /// DMA-list get: scatter/gather of up to dma_list_max_entries entries
  /// into contiguous local store starting at dst.
  void get_list(LsAddr dst, std::span<const DmaListEntry> list, int tag,
                VCycles now);

  /// Completion time of everything issued on `tag` so far.
  VCycles completion(int tag) const;
  /// Blocks (virtually) until the tag group completes; returns the stall
  /// added to the SPU clock and accumulates it in the counters.
  VCycles wait(int tag, VCycles now);

  const MfcCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = {}; }

private:
  void validate(const void* ea, LsAddr ls_addr, std::size_t size) const;
  VCycles transfer_cycles(std::size_t bytes) const;

  LocalStore* ls_;
  const DeviceModel* device_;
  int owner_;
  double contention_ = 1.0;
  std::vector<VCycles> tag_done_;  ///< device_->mfc_tag_count entries
  MfcCounters counters_;
};

}  // namespace rxc::cell
