#pragma once
/// \file program.h
/// Side-effect-free schedule IR: the abstract-op vocabulary of events.h
/// lifted into a value.  A Program is the straight-line sequence of machine
/// operations an executor WOULD perform for a given schedule x device-model
/// pair — DMA commands with EA/LS ranges and tags, tag-group waits, kernel
/// local-store access windows, mailbox round trips, direct-signal phases and
/// PPE join epochs — recorded without touching a CellMachine.  Producers:
/// core::extract_program (the scheduler's offload orchestration, mirrored
/// op-for-op from the SPE executor) and cell::hazard_program (the planted
/// race sequences).  Consumer: analysis::verify_program, which proves or
/// refutes local-store, DMA-queue, mailbox and happens-before safety
/// statically.
///
/// Conventions:
///  * `spe` is the machine-local SPU index (0-based), not a process-unique
///    event id — a program is always verified against one DeviceModel.
///  * Effective addresses are abstract arena offsets, not host pointers;
///    only byte-range overlap is meaningful, exactly as in events.h.
///  * One op kind, kLsReserve, has no events.h counterpart: it declares the
///    local-store allocator watermark an invocation reserves (code image +
///    pmatrices + strip buffers), so the verifier can bound worst-case
///    occupancy including buffers no transfer happens to touch.  Its
///    dynamic counterpart is LocalStore::alloc throwing HardwareError (the
///    fault trap cell::Fault::kLocalStoreOverflow exercises).

#include <cstdint>
#include <string>
#include <vector>

#include "cell/events.h"

namespace rxc::cell {

enum class OpKind {
  kDmaGet,        ///< main memory [ea, ea+size) -> local store [ls, ls+size)
  kDmaPut,        ///< local store [ls, ls+size) -> main memory [ea, ea+size)
  kTagWait,       ///< wait for tag group `tag` on `spe`
  kLsRead,        ///< kernel reads the local-store window [ls, ls+size)
  kLsWrite,       ///< kernel writes the local-store window [ls, ls+size)
  kLsReserve,     ///< allocator watermark: [0, size) resident on `spe`
  kMailboxWrite,  ///< write `value` to `spe`'s inbound/outbound mailbox
  kMailboxRead,   ///< read from `spe`'s inbound/outbound mailbox
  kSignal,        ///< direct-signal phase `signal` on `spe`'s channel
  kEpoch,         ///< PPE join: the global cross-SPE happens-before edge
};

const char* op_kind_name(OpKind kind);

/// One abstract machine operation.  Fields beyond `kind`/`spe` are
/// meaningful per kind (see OpKind); unused fields stay at their defaults.
struct AbstractOp {
  OpKind kind = OpKind::kEpoch;
  int spe = 0;
  int tag = -1;
  std::uint64_t ea = 0;
  std::uint64_t ls = 0;
  std::uint64_t size = 0;
  SignalOp signal = SignalOp::kGo;
  bool inbound = false;  ///< mailbox direction (true: PPE -> SPU)
  std::uint32_t value = 0;

  /// "dma-get spe=0 tag=1 ea[0x0,0x40) ls[0x1d400,0x1d440)" -style line.
  std::string to_string() const;
};

/// A straight-line abstract schedule in global issue order (the order a
/// sequential interpreter — or the race detector's event stream — would
/// observe the ops).  Append helpers mirror the events.h hook signatures.
struct Program {
  std::vector<AbstractOp> ops;

  void dma_get(int spe, int tag, std::uint64_t ea, std::uint64_t ls,
               std::uint64_t size);
  void dma_put(int spe, int tag, std::uint64_t ls, std::uint64_t ea,
               std::uint64_t size);
  void tag_wait(int spe, int tag);
  void ls_read(int spe, std::uint64_t ls, std::uint64_t size);
  void ls_write(int spe, std::uint64_t ls, std::uint64_t size);
  void ls_reserve(int spe, std::uint64_t size);
  void mailbox_write(int spe, bool inbound, std::uint32_t value);
  void mailbox_read(int spe, bool inbound);
  void signal(int spe, SignalOp op);
  void epoch();

  /// One op per line.
  std::string to_string() const;
};

/// Which agent executes `op`, for the cross-agent wait-for analysis: the
/// PPE performs inbound mailbox writes, outbound mailbox reads, the kGo and
/// kRead signal phases and the join epochs; the op's SPU performs
/// everything else.  Mirrors SpeExecutor::record's orchestration.
bool op_runs_on_ppe(const AbstractOp& op);

}  // namespace rxc::cell
