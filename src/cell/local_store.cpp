#include "cell/local_store.h"

namespace rxc::cell {

LocalStore::LocalStore(std::size_t capacity, std::size_t code_bytes)
    : bytes_(capacity),
      code_bytes_(round_up(code_bytes, kDmaAlignment)),
      top_(code_bytes_) {
  RXC_REQUIRE(code_bytes_ < capacity, "code image exceeds local store");
}

LsAddr LocalStore::alloc(std::size_t size) {
  const std::size_t aligned = round_up(size, kDmaAlignment);
  if (top_ + aligned > capacity())
    throw HardwareError("local store overflow: need " +
                        std::to_string(aligned) + " bytes, " +
                        std::to_string(free_bytes()) + " free");
  const LsAddr addr = static_cast<LsAddr>(top_);
  top_ += aligned;
  return addr;
}

void LocalStore::reset() { top_ = code_bytes_; }

std::byte* LocalStore::data(LsAddr addr, std::size_t size) {
  if (static_cast<std::size_t>(addr) + size > capacity())
    throw HardwareError("local store access out of bounds");
  return bytes_.data() + addr;
}

const std::byte* LocalStore::data(LsAddr addr, std::size_t size) const {
  if (static_cast<std::size_t>(addr) + size > capacity())
    throw HardwareError("local store access out of bounds");
  return bytes_.data() + addr;
}

}  // namespace rxc::cell
