#pragma once
/// \file cost_params.h
/// Cycle-cost model of the Cell BE (3.2 GHz) used by the timing simulator.
///
/// Sources for the constants:
///  * Cell BE specs quoted in the paper (§4): 3.2 GHz clock; SPU issues two
///    double-precision FP operations every six cycles (partially pipelined)
///    and one single-precision op per cycle; local store 256 KB; DMA
///    transfers <= 16 KB, 128-bit aligned; EIB 204.8 GB/s aggregate
///    (25.6 GB/s = 8 B/cycle per port); ~20-cycle branch-miss penalty
///    (§5.2.3, citing the CBE tutorial).
///  * Paper-reported shares used as calibration anchors (§5.2.1-5.2.6):
///    libm exp() = 50% of naive SPE newview time at ~150 calls/invocation;
///    SDK exp swap cuts runtime 37-41%; the scaling conditional costs 45%
///    of newview before the cast optimization and 6% after; DMA waits are
///    11.4% before double buffering; the two hot loops drop 19.57 s ->
///    11.48 s with vectorization; mailbox -> direct-memory signaling buys
///    2-11%.
///
/// Absolute per-invocation times are NOT fitted to the paper's testbed —
/// EXPERIMENTS.md compares stage-to-stage ratios, which is where the model
/// carries information.

#include <cstdint>

namespace rxc::cell {

/// Simulated cycles (virtual time unit).  Converted to seconds at clock_hz.
using Cycles = std::uint64_t;

struct CostParams {
  double clock_hz = 3.2e9;

  // --- SPU arithmetic ---------------------------------------------------
  /// Scalar double-precision FP op: DP pipeline throughput is one 2-lane
  /// instruction per ~6 cycles; scalar code wastes the second lane.
  double spu_dp_flop_cycles = 6.0;
  /// One 2-lane vector DP instruction (counts as 2 flops when both lanes
  /// carry data).
  double spu_dp_vector_instr_cycles = 6.0;
  /// Vector-construction overhead (splats/gathers) per vectorized pattern
  /// slot — the paper's "25 new instructions for creating vectors".
  double spu_vector_build_cycles = 26.0;
  /// Local-store touch per likelihood entry processed (load+store, even
  /// pipelining): folded per-pattern overhead.
  double spu_ls_cycles_per_pattern = 200.0;

  // --- exp() variants (per call) -----------------------------------------
  /// libm exp on the SPU: huge (software pipeline unfriendly, double
  /// precision, branchy range handling).  Calibrated against the 50% share.
  double spu_exp_libm_cycles = 2140.0;
  /// Cell SDK numerical exp (exp.h): short polynomial, branch-free.
  double spu_exp_sdk_cycles = 60.0;
  /// libm log on the SPU (evaluate() calls it per pattern; §5.2.1 names
  /// exp() and log() together as the math-library bottleneck).
  double spu_log_libm_cycles = 900.0;
  /// SDK numerical log.
  double spu_log_sdk_cycles = 70.0;

  // --- scaling conditional (per pattern) ----------------------------------
  /// Original form: 4x fabs + 4 double compares + short-circuit branches;
  /// the 8 hard-to-predict conditions cost ~20 cycles each on mispredict.
  double spu_cond_fp_cycles = 410.0;
  /// Cast + vectorized form: sign-mask AND, integer compares, no branches.
  double spu_cond_int_cycles = 5.0;
  double spu_branch_miss_cycles = 20.0;  ///< documented penalty (unused
                                         ///< directly; folded into cond_fp)

  // --- DMA / EIB ----------------------------------------------------------
  /// Startup latency of one MFC DMA command (tag issue to first beat).
  double dma_startup_cycles = 490.0;
  /// Per-SPE port bandwidth: 25.6 GB/s at 3.2 GHz = 8 bytes/cycle.
  double dma_bytes_per_cycle = 8.0;
  /// Multiplicative EIB slowdown per additional concurrently-DMAing SPE
  /// (aggregate 204.8 GB/s is ample for 8 ports; contention is mild).
  double eib_contention_per_spe = 0.03;

  // --- PPE <-> SPE signaling (per offloaded call, round trip halves) ------
  /// Mailbox write/read through MMIO: hundreds of cycles each way.
  double mailbox_signal_cycles = 3300.0;
  /// Direct memory-to-memory signaling (§5.2.6): PPE stores to the SPE's
  /// local store / SPE commits straight to main memory.
  double direct_signal_cycles = 200.0;
  /// SPE-side busy-wait poll granularity (adds to offload start latency).
  double spe_poll_cycles = 40.0;

  // --- PPE ------------------------------------------------------------------
  /// PPE double-precision FP op (dual-issue in-order PowerPC with fused
  /// madd; likelihood code sustains roughly 1 flop/cycle).
  double ppe_dp_flop_cycles = 3.4;
  /// PPE libm exp call.
  double ppe_exp_libm_cycles = 265.0;
  /// PPE libm log call.
  double ppe_log_cycles = 375.0;
  /// SMT slowdown: when both PPE hardware threads compute, each runs this
  /// factor slower than alone (Table 1(a): 2 workers x 4 bootstraps take
  /// 207.67 s vs 4 x 36.9 s sequential => ~1.41).
  double ppe_smt_factor = 1.41;
  /// PPE scaling conditional per pattern (good branch predictor, but 8
  /// data-dependent compares).
  double ppe_cond_cycles = 16.0;
  /// PPE per-pattern bookkeeping (loads/stores through the cache).
  double ppe_mem_cycles_per_pattern = 128.0;
  /// PPE-side orchestration around one offloaded call (argument marshal,
  /// result wait, scheduler touch).  Dominant at the hot functions' fine
  /// granularity — newview averages 71 us per invocation (§5.2.6), so ~10 us
  /// of per-call PPE overhead is what makes the naive port lose to the PPE.
  double ppe_offload_overhead_cycles = 30000.0;
  /// Per-call dispatch once ALL three functions live on the SPE (§5.2.7):
  /// nested newview calls from makenewz/evaluate run SPE-side without any
  /// PPE round trip.
  double ppe_chained_overhead_cycles = 600.0;
  /// EDTLP context switch on offload (paper §5.3): performed whenever more
  /// MPI processes than hardware threads are multiplexed.  A full Linux
  /// process switch (save/restore, run-queue, cache/TLB disturbance) on the
  /// 2006-era kernel costs several microseconds; calibrated against the
  /// paper's naive-vs-MGPS speedup of ~2.67x.
  double ppe_context_switch_cycles = 36000.0;

  // --- LLP (loop-level parallelization) -------------------------------------
  /// Per-invocation cost of forking a loop across SPEs and joining results
  /// (extra signals + partial-result merge), charged per participating SPE.
  double llp_fork_join_cycles = 2600.0;

  double seconds(Cycles cycles) const {
    return static_cast<double>(cycles) / clock_hz;
  }

  friend bool operator==(const CostParams&, const CostParams&) = default;
};

/// Default parameters (see file comment for provenance).
inline constexpr CostParams kDefaultCostParams{};

// The hardware architecture constants (local-store size, SPE count, DMA
// limits, mailbox depths) that used to live here are now fields of
// cell::DeviceModel (device_model.h) — geometry is configuration, not code.

}  // namespace rxc::cell
