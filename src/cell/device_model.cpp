#include "cell/device_model.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "support/aligned.h"
#include "support/error.h"
#include "support/json.h"
#include "support/json_value.h"

namespace rxc::cell {
namespace {

/// Every CostParams field, by wire key, for table-driven (de)serialization:
/// one list keeps to_string and from_string from drifting apart.
struct CostField {
  const char* key;
  double CostParams::*member;
};

constexpr CostField kCostFields[] = {
    {"clock_hz", &CostParams::clock_hz},
    {"spu_dp_flop_cycles", &CostParams::spu_dp_flop_cycles},
    {"spu_dp_vector_instr_cycles", &CostParams::spu_dp_vector_instr_cycles},
    {"spu_vector_build_cycles", &CostParams::spu_vector_build_cycles},
    {"spu_ls_cycles_per_pattern", &CostParams::spu_ls_cycles_per_pattern},
    {"spu_exp_libm_cycles", &CostParams::spu_exp_libm_cycles},
    {"spu_exp_sdk_cycles", &CostParams::spu_exp_sdk_cycles},
    {"spu_log_libm_cycles", &CostParams::spu_log_libm_cycles},
    {"spu_log_sdk_cycles", &CostParams::spu_log_sdk_cycles},
    {"spu_cond_fp_cycles", &CostParams::spu_cond_fp_cycles},
    {"spu_cond_int_cycles", &CostParams::spu_cond_int_cycles},
    {"spu_branch_miss_cycles", &CostParams::spu_branch_miss_cycles},
    {"dma_startup_cycles", &CostParams::dma_startup_cycles},
    {"dma_bytes_per_cycle", &CostParams::dma_bytes_per_cycle},
    {"eib_contention_per_spe", &CostParams::eib_contention_per_spe},
    {"mailbox_signal_cycles", &CostParams::mailbox_signal_cycles},
    {"direct_signal_cycles", &CostParams::direct_signal_cycles},
    {"spe_poll_cycles", &CostParams::spe_poll_cycles},
    {"ppe_dp_flop_cycles", &CostParams::ppe_dp_flop_cycles},
    {"ppe_exp_libm_cycles", &CostParams::ppe_exp_libm_cycles},
    {"ppe_log_cycles", &CostParams::ppe_log_cycles},
    {"ppe_smt_factor", &CostParams::ppe_smt_factor},
    {"ppe_cond_cycles", &CostParams::ppe_cond_cycles},
    {"ppe_mem_cycles_per_pattern", &CostParams::ppe_mem_cycles_per_pattern},
    {"ppe_offload_overhead_cycles", &CostParams::ppe_offload_overhead_cycles},
    {"ppe_chained_overhead_cycles", &CostParams::ppe_chained_overhead_cycles},
    {"ppe_context_switch_cycles", &CostParams::ppe_context_switch_cycles},
    {"llp_fork_join_cycles", &CostParams::llp_fork_join_cycles},
};

[[noreturn]] void bad(const std::string& what) {
  throw ConfigError("device model: " + what);
}

int as_range_int(const JsonValue& v, const std::string& key, int lo, int hi) {
  const double d = v.as_number();
  if (d != std::floor(d) || d < lo || d > hi)
    bad("'" + key + "' must be an integer in [" + std::to_string(lo) + ", " +
        std::to_string(hi) + "]");
  return static_cast<int>(d);
}

std::size_t as_size(const JsonValue& v, const std::string& key) {
  const double d = v.as_number();
  if (d < 0 || d != std::floor(d) || d > 9e15)
    bad("'" + key + "' must be a non-negative integer");
  return static_cast<std::size_t>(d);
}

void parse_cost(const JsonValue& v, CostParams& cost) {
  if (!v.is_object()) bad("'cost' must be a JSON object");
  for (const auto& [key, field] : v.object) {
    const CostField* found = nullptr;
    for (const CostField& f : kCostFields)
      if (key == f.key) {
        found = &f;
        break;
      }
    if (found == nullptr) bad("cost: unknown key '" + key + "'");
    cost.*(found->member) = field.as_number();
  }
}

void require_nonneg(const char* key, double v) {
  if (!(v >= 0.0)) bad(std::string("cost.") + key + " must be >= 0");
}

}  // namespace

double DeviceModel::eib_factor(int active_spes) const {
  return 1.0 + cost.eib_contention_per_spe * std::max(0, active_spes - 1);
}

double DeviceModel::mailbox_factor(int concurrent_workers) const {
  return std::max(1, concurrent_workers);
}

void DeviceModel::validate() const {
  if (name.empty()) bad("name must be non-empty");
  // Names flow into whitespace-delimited calibration tables and CLI flags.
  for (char c : name)
    if (c <= ' ' || c == '@')
      bad("name must not contain whitespace, control characters or '@'");
  if (spe_count < 1 || spe_count > kMaxDeviceSpes)
    bad("spe_count must be in [1, " + std::to_string(kMaxDeviceSpes) +
        "], got " + std::to_string(spe_count));
  if (ppe_threads < 1 || ppe_threads > 16)
    bad("ppe_threads must be in [1, 16]");
  if (local_store_bytes < 4096 || local_store_bytes > (std::size_t{1} << 30))
    bad("local_store_bytes must be in [4096, 2^30]");
  if (round_up(offload_code_bytes, kDmaAlignment) >= local_store_bytes)
    bad("offload_code_bytes (" + std::to_string(offload_code_bytes) +
        ") must leave room below local_store_bytes (" +
        std::to_string(local_store_bytes) + ")");
  if (dma_max_bytes < kDmaAlignment || dma_max_bytes % kDmaAlignment != 0 ||
      dma_max_bytes > (std::size_t{1} << 24))
    bad("dma_max_bytes must be a multiple of 16 in [16, 2^24]");
  if (dma_list_max_entries < 1 || dma_list_max_entries > (std::size_t{1} << 20))
    bad("dma_list_max_entries must be in [1, 2^20]");
  if (mfc_tag_count < 1 || mfc_tag_count > 128)
    bad("mfc_tag_count must be in [1, 128]");
  if (mfc_queue_depth < 1 || mfc_queue_depth > 1024)
    bad("mfc_queue_depth must be in [1, 1024]");
  if (mailbox_in_depth < 1 || mailbox_in_depth > 1024)
    bad("mailbox_in_depth must be in [1, 1024]");
  if (mailbox_out_depth < 1 || mailbox_out_depth > 1024)
    bad("mailbox_out_depth must be in [1, 1024]");
  if (!(cost.clock_hz > 0.0)) bad("cost.clock_hz must be > 0");
  if (!(cost.dma_bytes_per_cycle > 0.0))
    bad("cost.dma_bytes_per_cycle must be > 0");
  if (!(cost.ppe_smt_factor >= 1.0)) bad("cost.ppe_smt_factor must be >= 1");
  for (const CostField& f : kCostFields) require_nonneg(f.key, cost.*(f.member));
}

std::string DeviceModel::to_string() const {
  JsonWriter w;
  w.begin_object();
  w.kv("name", name);
  w.kv("spe_count", static_cast<std::uint64_t>(spe_count));
  w.kv("ppe_threads", static_cast<std::uint64_t>(ppe_threads));
  w.kv("local_store_bytes", static_cast<std::uint64_t>(local_store_bytes));
  w.kv("offload_code_bytes", static_cast<std::uint64_t>(offload_code_bytes));
  w.kv("dma_max_bytes", static_cast<std::uint64_t>(dma_max_bytes));
  w.kv("dma_list_max_entries",
       static_cast<std::uint64_t>(dma_list_max_entries));
  w.kv("mfc_tag_count", static_cast<std::uint64_t>(mfc_tag_count));
  w.kv("mfc_queue_depth", static_cast<std::uint64_t>(mfc_queue_depth));
  w.kv("mailbox_in_depth", static_cast<std::uint64_t>(mailbox_in_depth));
  w.kv("mailbox_out_depth", static_cast<std::uint64_t>(mailbox_out_depth));
  w.key("cost");
  w.begin_object();
  for (const CostField& f : kCostFields) w.kv(f.key, cost.*(f.member));
  w.end_object();
  w.end_object();
  return w.str();
}

DeviceModel DeviceModel::from_string(const std::string& text) {
  JsonValue doc;
  try {
    doc = parse_json(text);
  } catch (const ParseError& e) {
    throw ConfigError(std::string("device model: ") + e.what());
  }
  if (!doc.is_object()) bad("document is not a JSON object");

  DeviceModel m;
  bool saw_name = false;
  try {
    for (const auto& [key, v] : doc.object) {
      if (key == "name") {
        m.name = v.as_string();
        saw_name = true;
      } else if (key == "spe_count") {
        m.spe_count = as_range_int(v, key, 1, kMaxDeviceSpes);
      } else if (key == "ppe_threads") {
        m.ppe_threads = as_range_int(v, key, 1, 16);
      } else if (key == "local_store_bytes") {
        m.local_store_bytes = as_size(v, key);
      } else if (key == "offload_code_bytes") {
        m.offload_code_bytes = as_size(v, key);
      } else if (key == "dma_max_bytes") {
        m.dma_max_bytes = as_size(v, key);
      } else if (key == "dma_list_max_entries") {
        m.dma_list_max_entries = as_size(v, key);
      } else if (key == "mfc_tag_count") {
        m.mfc_tag_count = as_range_int(v, key, 1, 128);
      } else if (key == "mfc_queue_depth") {
        m.mfc_queue_depth = as_range_int(v, key, 1, 1024);
      } else if (key == "mailbox_in_depth") {
        m.mailbox_in_depth = as_range_int(v, key, 1, 1024);
      } else if (key == "mailbox_out_depth") {
        m.mailbox_out_depth = as_range_int(v, key, 1, 1024);
      } else if (key == "cost") {
        parse_cost(v, m.cost);
      } else {
        bad("unknown key '" + key + "'");
      }
    }
  } catch (const ParseError& e) {
    // Typed-accessor mismatches ("spe_count": "eight") are config errors at
    // this layer: the JSON itself was well-formed.
    throw ConfigError(std::string("device model: ") + e.what());
  }
  if (!saw_name) bad("missing required key 'name'");
  m.validate();
  return m;
}

const std::vector<DeviceModel>& device_presets() {
  static const std::vector<DeviceModel>* presets = [] {
    auto* v = new std::vector<DeviceModel>;
    v->push_back(DeviceModel{});  // cell-2007: every default above

    DeviceModel big;
    big.name = "cell-16spe-512k";
    big.spe_count = 16;
    big.local_store_bytes = 512 * 1024;
    v->push_back(big);

    DeviceModel fast;
    fast.name = "cell-fast-eib";
    fast.cost.dma_bytes_per_cycle = 16.0;
    fast.cost.eib_contention_per_spe = 0.0;
    v->push_back(fast);

    for (const DeviceModel& m : *v) m.validate();
    return v;
  }();
  return *presets;
}

namespace {

/// Process-global registry of file-loaded models (leaked: devices may be
/// looked up from detached server threads during shutdown).
std::mutex& registry_mutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

std::map<std::string, DeviceModel>& registry() {
  static auto* models = new std::map<std::string, DeviceModel>;
  return *models;
}

const DeviceModel* find_preset(const std::string& name) {
  for (const DeviceModel& m : device_presets())
    if (m.name == name) return &m;
  return nullptr;
}

}  // namespace

void register_device_model(const DeviceModel& model) {
  model.validate();
  if (const DeviceModel* preset = find_preset(model.name)) {
    if (model == *preset) return;  // re-registering a preset verbatim is ok
    bad("cannot replace built-in preset '" + model.name + "'");
  }
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry()[model.name] = model;
}

std::optional<DeviceModel> find_device_model(const std::string& name) {
  if (const DeviceModel* preset = find_preset(name)) return *preset;
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(name);
  if (it == registry().end()) return std::nullopt;
  return it->second;
}

DeviceModel require_device_model(const std::string& name) {
  std::optional<DeviceModel> m = find_device_model(name);
  if (!m) bad("unknown device model '" + name + "'");
  return *std::move(m);
}

DeviceModel load_device_model_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) bad("cannot open device config '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  DeviceModel model;
  try {
    model = DeviceModel::from_string(text.str());
  } catch (const ConfigError& e) {
    bad("device config '" + path + "': " + e.what());
  }
  register_device_model(model);
  return model;
}

}  // namespace rxc::cell
