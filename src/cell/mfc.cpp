#include "cell/mfc.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"

namespace rxc::cell {

namespace {

/// Hot-path DMA metrics (no-ops unless obs is enabled).
void count_transfer(std::size_t bytes) {
  static obs::Counter& transfers = obs::counter("cell.dma.transfers");
  static obs::Counter& total = obs::counter("cell.dma.bytes");
  static obs::Histogram& sizes = obs::histogram("cell.dma.transfer_bytes");
  transfers.add();
  total.add(bytes);
  sizes.observe(static_cast<double>(bytes));
}

}  // namespace

Mfc::Mfc(LocalStore& ls, const DeviceModel& device, int owner)
    : ls_(&ls),
      device_(&device),
      owner_(owner),
      tag_done_(static_cast<std::size_t>(device.mfc_tag_count), 0.0) {}

void Mfc::set_contention(double factor) {
  RXC_REQUIRE(factor >= 1.0, "EIB contention factor must be >= 1");
  contention_ = factor;
}

void Mfc::validate(const void* ea, LsAddr ls_addr, std::size_t size) const {
  if (size == 0 || size > device_->dma_max_bytes)
    throw HardwareError("DMA size " + std::to_string(size) +
                        " outside (0, " +
                        std::to_string(device_->dma_max_bytes) + "]");
  const bool small_ok =
      size == 1 || size == 2 || size == 4 || size == 8;
  if (!small_ok && size % 16 != 0)
    throw HardwareError("DMA size " + std::to_string(size) +
                        " must be 1/2/4/8 or a multiple of 16");
  if (!small_ok) {
    if (!is_aligned(ea, 16))
      throw HardwareError("DMA effective address not 128-bit aligned");
    if (ls_addr % 16 != 0)
      throw HardwareError("DMA local-store address not 128-bit aligned");
  } else {
    // Small transfers require natural alignment on both sides.
    if (reinterpret_cast<std::uintptr_t>(ea) % size != 0 ||
        ls_addr % size != 0)
      throw HardwareError("small DMA transfer not naturally aligned");
  }
}

VCycles Mfc::transfer_cycles(std::size_t bytes) const {
  return device_->cost.dma_startup_cycles +
         static_cast<double>(bytes) /
             (device_->cost.dma_bytes_per_cycle / contention_);
}

void Mfc::get(LsAddr dst, const void* src, std::size_t size, int tag,
              VCycles now) {
  RXC_ASSERT(tag >= 0 && tag < tag_count());
  validate(src, dst, size);
  std::memcpy(ls_->data(dst, size), src, size);
  tag_done_[tag] = std::max(tag_done_[tag], now) + transfer_cycles(size);
  ++counters_.transfers;
  counters_.bytes += size;
  count_transfer(size);
  if (EventSink* sink = event_sink())
    sink->on_dma_get(owner_, tag, reinterpret_cast<std::uintptr_t>(src), dst,
                     size, now, tag_done_[tag]);
}

void Mfc::put(void* dst, LsAddr src, std::size_t size, int tag, VCycles now) {
  RXC_ASSERT(tag >= 0 && tag < tag_count());
  validate(dst, src, size);
  std::memcpy(dst, ls_->data(src, size), size);
  tag_done_[tag] = std::max(tag_done_[tag], now) + transfer_cycles(size);
  ++counters_.transfers;
  counters_.bytes += size;
  count_transfer(size);
  if (EventSink* sink = event_sink())
    sink->on_dma_put(owner_, tag, src, reinterpret_cast<std::uintptr_t>(dst),
                     size, now, tag_done_[tag]);
}

void Mfc::get_list(LsAddr dst, std::span<const DmaListEntry> list, int tag,
                   VCycles now) {
  if (list.size() > device_->dma_list_max_entries)
    throw HardwareError("DMA list exceeds " +
                        std::to_string(device_->dma_list_max_entries) +
                        " entries");
  VCycles done = std::max(tag_done_[tag], now);
  LsAddr cursor = dst;
  for (const auto& entry : list) {
    validate(entry.ea, cursor, entry.size);
    std::memcpy(ls_->data(cursor, entry.size), entry.ea, entry.size);
    done += transfer_cycles(entry.size);
    ++counters_.transfers;
    counters_.bytes += entry.size;
    count_transfer(entry.size);
    if (EventSink* sink = event_sink())
      sink->on_dma_get(owner_, tag,
                       reinterpret_cast<std::uintptr_t>(entry.ea), cursor,
                       entry.size, now, done);
    cursor += round_up(entry.size, kDmaAlignment);
  }
  tag_done_[tag] = done;
  ++counters_.list_transfers;
}

VCycles Mfc::completion(int tag) const {
  RXC_ASSERT(tag >= 0 && tag < tag_count());
  return tag_done_[tag];
}

VCycles Mfc::wait(int tag, VCycles now) {
  const VCycles stall = std::max(0.0, completion(tag) - now);
  counters_.stall_cycles += stall;
  static obs::Histogram& stalls = obs::histogram("cell.dma.stall_cycles");
  stalls.observe(stall);
  if (EventSink* sink = event_sink())
    sink->on_tag_wait(owner_, tag, now + stall);
  return stall;
}

}  // namespace rxc::cell
