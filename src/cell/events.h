#pragma once
/// \file events.h
/// Machine-event hooks: the simulator's memory-consistency event stream.
///
/// Every DMA command, tag-group wait, mailbox operation, direct-memory
/// signal and kernel local-store access window can be observed by an
/// installed EventSink.  The race detector in src/analysis is the primary
/// consumer; nothing in src/cell depends on it — the dependency points the
/// other way, through this interface.
///
/// Cost discipline mirrors the obs metrics registry: with no sink installed
/// (the default) every hook site is one relaxed atomic load plus a
/// predicted-not-taken branch, so `RXC_ANALYZE=off` adds no measurable
/// overhead to simulation hot paths.
///
/// Times are virtual cycles on the issuing SPU's clock.  Effective
/// addresses are host pointers reduced to integers — the sink reasons about
/// byte-range overlap, never dereferences.

#include <atomic>
#include <cstdint>

#include "cell/local_store.h"

namespace rxc::cell {

/// Virtual time in cycles (same alias as mfc.h; kept self-contained here so
/// the hook header stays leaf-level).
using VCycles = double;

/// Phases of the direct memory-to-memory signaling protocol (the paper's
/// §5.2.6 replacement for mailbox round trips).  The safe order per
/// offload is kGo (PPE stores the command word), kComplete (SPE stores the
/// completion word), kRead (PPE reads it back).
enum class SignalOp { kGo, kComplete, kRead };

class EventSink {
 public:
  virtual ~EventSink() = default;

  /// DMA get: main memory [ea, ea+size) -> local store [ls, ls+size).
  /// `complete` is the tag group's completion time after this command.
  virtual void on_dma_get(int spe, int tag, std::uintptr_t ea, LsAddr ls,
                          std::size_t size, VCycles issue,
                          VCycles complete) = 0;
  /// DMA put: local store [ls, ls+size) -> main memory [ea, ea+size).
  virtual void on_dma_put(int spe, int tag, LsAddr ls, std::uintptr_t ea,
                          std::size_t size, VCycles issue,
                          VCycles complete) = 0;
  /// Tag-group wait: the SPU clock has advanced to `now`; every transfer
  /// issued on `tag` before this point happens-before subsequent events on
  /// this SPE.
  virtual void on_tag_wait(int spe, int tag, VCycles now) = 0;
  /// Kernel code read the local-store window [addr, addr+size) during the
  /// compute interval [t0, t1].
  virtual void on_ls_read(int spe, LsAddr addr, std::size_t size, VCycles t0,
                          VCycles t1) = 0;
  /// Kernel code wrote the local-store window [addr, addr+size) during the
  /// compute interval [t0, t1].
  virtual void on_ls_write(int spe, LsAddr addr, std::size_t size, VCycles t0,
                           VCycles t1) = 0;
  /// Mailbox traffic (inbound = PPE -> SPU).  Ordering context for
  /// diagnostics; depth violations already throw HardwareError.
  virtual void on_mailbox(int spe, bool inbound, bool write,
                          std::uint32_t value) = 0;
  /// One phase of the direct-signaling protocol on `spe`'s channel.
  virtual void on_signal(int spe, SignalOp op) = 0;
  /// PPE join point (end of one offloaded kernel invocation): a global
  /// happens-before edge across all SPEs that participated.
  virtual void on_epoch() = 0;
};

namespace detail {
inline std::atomic<EventSink*> g_event_sink{nullptr};
}  // namespace detail

/// Currently installed sink, or nullptr (the common, zero-cost case).
inline EventSink* event_sink() {
  return detail::g_event_sink.load(std::memory_order_relaxed);
}

/// Installs (or, with nullptr, removes) the process-global sink.  The sink
/// must outlive all simulation activity; install before running executors.
inline void set_event_sink(EventSink* sink) {
  detail::g_event_sink.store(sink, std::memory_order_release);
}

}  // namespace rxc::cell
