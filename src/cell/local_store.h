#pragma once
/// \file local_store.h
/// The SPE's software-managed local store (256 KB on the paper's machine;
/// the capacity now comes from the owning device model).  Unified
/// code+data: the offloaded code image is reserved at the bottom (the
/// paper's 117 KB module), and kernel buffers are carved from the remainder
/// with a watermark allocator.  Capacity and alignment violations throw
/// HardwareError — on silicon they would corrupt the running image.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/aligned.h"
#include "support/error.h"

namespace rxc::cell {

/// Offset into local store.
using LsAddr = std::uint32_t;

class LocalStore {
public:
  /// A `capacity`-byte store with `code_bytes` reserved at the bottom for
  /// the loaded code image.
  LocalStore(std::size_t capacity, std::size_t code_bytes);

  std::size_t capacity() const { return bytes_.size(); }
  std::size_t code_bytes() const { return code_bytes_; }
  std::size_t allocated() const { return top_; }
  std::size_t free_bytes() const { return capacity() - top_; }

  /// Allocates `size` bytes aligned to 16 (the DMA requirement).  Throws
  /// HardwareError when the local store would overflow.
  LsAddr alloc(std::size_t size);

  /// Resets the allocator to the post-code-load watermark (buffers are
  /// reused across kernel invocations, like the real port's static
  /// buffers).
  void reset();

  /// Raw access for the MFC and kernel code.  Bounds-checked.
  std::byte* data(LsAddr addr, std::size_t size);
  const std::byte* data(LsAddr addr, std::size_t size) const;

  template <class T>
  T* as(LsAddr addr, std::size_t count) {
    return reinterpret_cast<T*>(data(addr, count * sizeof(T)));
  }
  template <class T>
  const T* as(LsAddr addr, std::size_t count) const {
    return reinterpret_cast<const T*>(data(addr, count * sizeof(T)));
  }

private:
  aligned_vector<std::byte> bytes_;
  std::size_t code_bytes_;
  std::size_t top_;
};

}  // namespace rxc::cell
