#pragma once
/// \file invariants.h
/// Simulator invariant auditing.
///
/// The timing simulator is only trustworthy while its internal state obeys
/// the architectural and bookkeeping rules it was built around: clocks and
/// counters never go negative or non-finite, the local-store watermark stays
/// between the code image and capacity, mailboxes never exceed their
/// architected depth, and — at task boundaries — every DMA tag group has
/// drained and every mailbox is empty.  A drifted invariant produces
/// plausible-looking but wrong virtual timings, which is worse than a crash,
/// so the conformance suite audits executors after every differential case.

#include <string>
#include <vector>

#include "cell/spu.h"

namespace rxc::cell {

/// Outcome of one audit: empty == healthy.
struct InvariantReport {
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  /// One violation per line (empty string when ok).
  std::string to_string() const;
};

/// Structural invariants that must hold at ANY point in a simulation:
///  - SPU clock, busy and DMA-stall cycles are finite and non-negative;
///  - busy + stall never exceeds the clock by more than rounding noise
///    (the clock only advances through charge() and wait_dma());
///  - local-store watermark lies in [code_bytes, capacity];
///  - mailbox occupancy never exceeds the architected depth;
///  - MFC tag completion times are finite and non-negative;
///  - MFC byte counters are consistent with transfer counts (every DMA
///    command moves between 1 byte and 16 KB).
InvariantReport check_invariants(const Spu& spu);

/// check_invariants() over every SPE of the machine.
InvariantReport check_invariants(const CellMachine& machine);

/// Quiescence invariants that must hold BETWEEN kernel invocations (the
/// executor's steady state): everything from check_invariants() plus
///  - both mailboxes empty (no lost or duplicated signals);
///  - every MFC tag group completed at or before the SPU clock (all DMA
///    issued has been waited on — no in-flight transfer leaks).
InvariantReport check_quiescent(const Spu& spu);

/// check_quiescent() over every SPE of the machine.
InvariantReport check_quiescent(const CellMachine& machine);

}  // namespace rxc::cell
