#pragma once
/// \file spu.h
/// One Synergistic Processing Element: SPU clock + local store + MFC +
/// mailboxes, with all geometry (local-store size, mailbox depths, DMA
/// limits) drawn from the owning machine's DeviceModel.  Kernel code
/// running "on" the SPE charges its virtual clock through this interface;
/// the scheduler reads the accumulated busy time.

#include <atomic>
#include <memory>

#include "cell/device_model.h"
#include "cell/local_store.h"
#include "cell/mailbox.h"
#include "cell/mfc.h"

namespace rxc::cell {

/// Reserves a block of kMaxDeviceSpes process-unique SPU event ids and
/// returns its base.  Machines built with a reserved base stamp machine
/// events (events.h) with ids no other machine uses, so an event sink
/// observing SEVERAL machines running concurrently (the serving layer's
/// device pool) can partition per-SPU state correctly — with the default
/// base 0, SPE i of every machine aliases to the same id, which is fine for
/// the one-machine-at-a-time uses but makes the race detector see phantom
/// overlaps between unrelated devices.  Blocks are kMaxDeviceSpes wide (the
/// ceiling on any model's spe_count) and start above the default ids
/// 0..kMaxDeviceSpes-1, so reserved machines never collide with default
/// ones regardless of either machine's configured width.
inline int reserve_spu_event_base() {
  static std::atomic<int> next{kMaxDeviceSpes};
  return next.fetch_add(kMaxDeviceSpes, std::memory_order_relaxed);
}

struct SpuCounters {
  VCycles busy_cycles = 0.0;      ///< compute (excludes DMA stalls)
  VCycles dma_stall_cycles = 0.0;
  std::uint64_t kernel_invocations = 0;
};

class Spu {
public:
  /// `event_id` is the id stamped on emitted machine events (events.h);
  /// -1 (default) means "same as id".  See reserve_spu_event_base().
  /// `device` must outlive the Spu (CellMachine owns both).
  Spu(int id, const DeviceModel& device, int event_id = -1)
      : id_(id),
        event_id_(event_id < 0 ? id : event_id),
        device_(&device),
        ls_(device.local_store_bytes, device.offload_code_bytes),
        mfc_(ls_, device, event_id_),
        inbox_(device.mailbox_in_depth, event_id_, /*inbound=*/true),
        outbox_(device.mailbox_out_depth, event_id_, /*inbound=*/false) {}

  int id() const { return id_; }
  int event_id() const { return event_id_; }
  const DeviceModel& device() const { return *device_; }
  const CostParams& params() const { return device_->cost; }
  LocalStore& ls() { return ls_; }
  const LocalStore& ls() const { return ls_; }
  Mfc& mfc() { return mfc_; }
  const Mfc& mfc() const { return mfc_; }
  Mailbox& inbox() { return inbox_; }
  const Mailbox& inbox() const { return inbox_; }
  Mailbox& outbox() { return outbox_; }
  const Mailbox& outbox() const { return outbox_; }

  VCycles now() const { return now_; }
  void reset_clock() { now_ = 0.0; }

  /// Charges compute cycles.
  void charge(double cycles) {
    RXC_ASSERT(cycles >= 0.0);
    now_ += cycles;
    counters_.busy_cycles += cycles;
  }

  /// Waits for a DMA tag group; stall advances the clock but not busy time.
  void wait_dma(int tag) {
    const VCycles stall = mfc_.wait(tag, now_);
    now_ += stall;
    counters_.dma_stall_cycles += stall;
  }

  void count_invocation() { ++counters_.kernel_invocations; }

  const SpuCounters& counters() const { return counters_; }
  void reset_counters() {
    counters_ = {};
    mfc_.reset_counters();
  }

private:
  int id_;
  int event_id_;
  const DeviceModel* device_;
  LocalStore ls_;
  Mfc mfc_;
  Mailbox inbox_;
  Mailbox outbox_;
  VCycles now_ = 0.0;
  SpuCounters counters_;
};

/// The machine a DeviceModel describes: one PPE (device.ppe_threads SMT
/// hardware threads, modeled by the schedulers) and device.spe_count SPEs.
class CellMachine {
public:
  /// `event_base` offsets the ids stamped on this machine's events; 0 (the
  /// default) keeps the historical ids 0..spe_count-1, a
  /// reserve_spu_event_base() block makes them process-unique.
  explicit CellMachine(DeviceModel device = {}, int event_base = 0)
      : device_(std::move(device)) {
    device_.validate();
    for (int i = 0; i < device_.spe_count; ++i)
      spes_.push_back(std::make_unique<Spu>(i, device_, event_base + i));
  }

  /// Spus hold pointers into device_; the machine must stay put.
  CellMachine(const CellMachine&) = delete;
  CellMachine& operator=(const CellMachine&) = delete;

  const DeviceModel& device() const { return device_; }
  const CostParams& params() const { return device_.cost; }
  Spu& spe(int i) { return *spes_.at(i); }
  const Spu& spe(int i) const { return *spes_.at(i); }
  int spe_count() const { return static_cast<int>(spes_.size()); }

private:
  DeviceModel device_;
  std::vector<std::unique_ptr<Spu>> spes_;
};

}  // namespace rxc::cell
