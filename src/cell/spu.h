#pragma once
/// \file spu.h
/// One Synergistic Processing Element: SPU clock + local store + MFC +
/// mailboxes.  Kernel code running "on" the SPE charges its virtual clock
/// through this interface; the scheduler reads the accumulated busy time.

#include <memory>

#include "cell/cost_params.h"
#include "cell/local_store.h"
#include "cell/mailbox.h"
#include "cell/mfc.h"

namespace rxc::cell {

struct SpuCounters {
  VCycles busy_cycles = 0.0;      ///< compute (excludes DMA stalls)
  VCycles dma_stall_cycles = 0.0;
  std::uint64_t kernel_invocations = 0;
};

class Spu {
public:
  Spu(int id, const CostParams& params)
      : id_(id),
        params_(&params),
        ls_(kOffloadCodeBytes),
        mfc_(ls_, params, id),
        inbox_(kMailboxInDepth, id, /*inbound=*/true),
        outbox_(kMailboxOutDepth, id, /*inbound=*/false) {}

  int id() const { return id_; }
  const CostParams& params() const { return *params_; }
  LocalStore& ls() { return ls_; }
  const LocalStore& ls() const { return ls_; }
  Mfc& mfc() { return mfc_; }
  const Mfc& mfc() const { return mfc_; }
  Mailbox& inbox() { return inbox_; }
  const Mailbox& inbox() const { return inbox_; }
  Mailbox& outbox() { return outbox_; }
  const Mailbox& outbox() const { return outbox_; }

  VCycles now() const { return now_; }
  void reset_clock() { now_ = 0.0; }

  /// Charges compute cycles.
  void charge(double cycles) {
    RXC_ASSERT(cycles >= 0.0);
    now_ += cycles;
    counters_.busy_cycles += cycles;
  }

  /// Waits for a DMA tag group; stall advances the clock but not busy time.
  void wait_dma(int tag) {
    const VCycles stall = mfc_.wait(tag, now_);
    now_ += stall;
    counters_.dma_stall_cycles += stall;
  }

  void count_invocation() { ++counters_.kernel_invocations; }

  const SpuCounters& counters() const { return counters_; }
  void reset_counters() {
    counters_ = {};
    mfc_.reset_counters();
  }

private:
  int id_;
  const CostParams* params_;
  LocalStore ls_;
  Mfc mfc_;
  Mailbox inbox_;
  Mailbox outbox_;
  VCycles now_ = 0.0;
  SpuCounters counters_;
};

/// The machine: one PPE (2 hardware threads, modeled by the schedulers) and
/// eight SPEs.
class CellMachine {
public:
  explicit CellMachine(CostParams params = kDefaultCostParams)
      : params_(params) {
    for (int i = 0; i < kSpeCount; ++i)
      spes_.push_back(std::make_unique<Spu>(i, params_));
  }

  const CostParams& params() const { return params_; }
  Spu& spe(int i) { return *spes_.at(i); }
  const Spu& spe(int i) const { return *spes_.at(i); }
  int spe_count() const { return static_cast<int>(spes_.size()); }

private:
  CostParams params_;
  std::vector<std::unique_ptr<Spu>> spes_;
};

}  // namespace rxc::cell
