#pragma once
/// \file trace.h
/// Offload traces: the timing record one task (inference or bootstrap)
/// leaves behind when executed through the simulated-SPE executor.  The
/// schedulers replay traces onto machine resources to compute makespans —
/// the same separation the real system has between what a task computes
/// (fixed) and where/when the scheduler runs it.

#include <cstdint>
#include <vector>

#include "cell/mfc.h"  // VCycles
#include "likelihood/kernels.h"

namespace rxc::core {

enum class KernelKind : std::uint8_t {
  kNewview,
  kEvaluate,
  kSumtable,
  kNrDerivatives,
  kEdgeGradient,
};

/// One engine-level kernel invocation.
struct TraceSegment {
  KernelKind kind = KernelKind::kNewview;
  /// PPE-side cycles: orchestration + signaling (+ the whole kernel when it
  /// is not offloaded).
  cell::VCycles ppe_cycles = 0.0;
  /// SPE-side cycles for this invocation: busy + DMA stalls.  Zero when the
  /// kernel ran on the PPE.  Under LLP this is the per-SPE maximum.
  cell::VCycles spe_cycles = 0.0;
  /// Portion of spe_cycles the critical SPE spent stalled on DMA waits
  /// (zero under perfect double buffering).  The trace exporter renders it
  /// as a distinct sub-span so stalls are visible in the timeline.
  cell::VCycles dma_stall_cycles = 0.0;
  /// Portion of ppe_cycles spent in the signaling round trip (mailbox or
  /// direct memory-to-memory); zero for unsignaled segments.
  cell::VCycles signal_cycles = 0.0;
  /// SPEs that cooperated on this invocation (1 = plain offload).
  std::uint8_t llp_ways = 1;
  /// True when this invocation was signaled individually (false inside a
  /// makenewz compound, which signals once).
  bool signaled = true;
};

/// Display name for one kernel kind (trace spans, reports).
constexpr const char* kernel_kind_name(KernelKind kind) {
  switch (kind) {
    case KernelKind::kNewview: return "newview";
    case KernelKind::kEvaluate: return "evaluate";
    case KernelKind::kSumtable: return "sumtable";
    case KernelKind::kNrDerivatives: return "nr_derivatives";
    case KernelKind::kEdgeGradient: return "edge_gradient";
  }
  return "?";
}

/// Virtual-time breakdown per kernel kind (the simulator's analogue of the
/// paper's gprof profile: newview 76.8%, makenewz 19.2%, evaluate 2.4%).
struct KernelProfile {
  cell::VCycles cycles[5] = {0, 0, 0, 0, 0};  ///< indexed by KernelKind

  cell::VCycles total() const {
    return cycles[0] + cycles[1] + cycles[2] + cycles[3] + cycles[4];
  }
  double share(KernelKind kind) const {
    const cell::VCycles t = total();
    return t > 0 ? cycles[static_cast<int>(kind)] / t : 0.0;
  }
  KernelProfile& operator+=(const KernelProfile& o) {
    for (int i = 0; i < 5; ++i) cycles[i] += o.cycles[i];
    return *this;
  }
};

struct TaskTrace {
  std::vector<TraceSegment> segments;
  lh::KernelCounters counters;  ///< aggregated kernel work (platform models)
  double log_likelihood = 0.0;  ///< functional result, for verification
  std::string newick;

  cell::VCycles total_ppe() const {
    cell::VCycles sum = 0;
    for (const auto& s : segments) sum += s.ppe_cycles;
    return sum;
  }
  cell::VCycles total_spe() const {
    cell::VCycles sum = 0;
    for (const auto& s : segments) sum += s.spe_cycles;
    return sum;
  }
  /// Serial single-resource duration (PPE + SPE strictly alternating).
  cell::VCycles serial_cycles() const { return total_ppe() + total_spe(); }

  /// DMA-stall portion of the critical SPE's time, summed over segments.
  cell::VCycles total_dma_stall() const {
    cell::VCycles sum = 0;
    for (const auto& s : segments) sum += s.dma_stall_cycles;
    return sum;
  }

  /// Where the task's time went, by kernel kind (PPE + SPE cycles).
  KernelProfile profile() const {
    KernelProfile prof;
    for (const auto& s : segments)
      prof.cycles[static_cast<int>(s.kind)] += s.ppe_cycles + s.spe_cycles;
    return prof;
  }
};

}  // namespace rxc::core
