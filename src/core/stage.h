#pragma once
/// \file stage.h
/// The paper's cumulative optimization stages (§5.2, Tables 1-7).  Each
/// stage is the previous one plus a single code change, exactly as the
/// paper applies them; `stage_config` expands a stage into the executor
/// toggles.

#include <string>

namespace rxc::core {

enum class Stage {
  kPpeOnly,         ///< Table 1(a): everything runs on the PPE
  kOffloadNewview,  ///< Table 1(b): naive newview() offload
  kFastExp,         ///< Table 2: + Cell-SDK exp()
  kIntCond,         ///< Table 3: + cast/vectorized scaling conditional
  kDoubleBuffer,    ///< Table 4: + double-buffered strip DMA
  kVectorize,       ///< Table 5: + SIMD likelihood loops
  kDirectComm,      ///< Table 6: + direct memory-to-memory signaling
  kOffloadAll,      ///< Table 7: + makenewz()/evaluate() offloaded too
};

/// Executor-level toggles implied by a stage.
struct StageToggles {
  bool offload_newview = false;
  bool offload_rest = false;   ///< evaluate + makenewz inner kernels
  bool sdk_exp = false;        ///< SPE exp variant
  bool int_cond = false;       ///< scaling-conditional variant
  bool double_buffer = false;  ///< overlap strip DMA with compute
  bool vectorized = false;     ///< SIMD loop bodies
  bool direct_comm = false;    ///< direct-memory PPE<->SPE signaling
};

constexpr StageToggles stage_toggles(Stage stage) {
  StageToggles t;
  switch (stage) {
    case Stage::kOffloadAll:
      t.offload_rest = true;
      [[fallthrough]];
    case Stage::kDirectComm:
      t.direct_comm = true;
      [[fallthrough]];
    case Stage::kVectorize:
      t.vectorized = true;
      [[fallthrough]];
    case Stage::kDoubleBuffer:
      t.double_buffer = true;
      [[fallthrough]];
    case Stage::kIntCond:
      t.int_cond = true;
      [[fallthrough]];
    case Stage::kFastExp:
      t.sdk_exp = true;
      [[fallthrough]];
    case Stage::kOffloadNewview:
      t.offload_newview = true;
      break;
    case Stage::kPpeOnly:
      break;
  }
  return t;
}

std::string stage_name(Stage stage);

}  // namespace rxc::core
