#pragma once
/// \file port.h
/// Top-level API of the RAxML-Cell port: run a full analysis (multiple
/// inferences + bootstraps) on the simulated Cell under a chosen
/// optimization stage and scheduling model, and report virtual time.
///
/// This is the entry point the table/figure benches drive; it is also a
/// real analysis — the trees and likelihoods it returns are genuine results
/// computed through the simulated SPEs.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cell/spu.h"
#include "core/scheduler.h"
#include "core/spe_executor.h"
#include "core/stage.h"
#include "search/analysis.h"

namespace rxc::core {

enum class SchedulerModel {
  kNaiveMpi,  ///< Table 1-7 rows: W MPI processes on the PPE threads
  kEdtlp,     ///< event-driven task-level (8 processes)
  kLlp,       ///< loop-level across SPEs
  kMgps,      ///< dynamic hybrid (Table 8 / Figure 3)
};

struct CellRunConfig {
  Stage stage = Stage::kOffloadAll;
  SchedulerModel scheduler = SchedulerModel::kNaiveMpi;
  /// MPI processes for kNaiveMpi (bounded by the device's PPE SMT width).
  int workers = 1;
  /// SPEs per offloaded loop for kLlp (bounded by the device's SPE count).
  int llp_ways = 8;
  lh::EngineConfig engine;
  search::SearchOptions search;
  /// Execute only this many distinct tasks and replay their traces for the
  /// rest (0 = execute everything).  Replayed tasks reuse timing but not
  /// results; the benches use this to keep wall time low on 128-bootstrap
  /// sweeps.
  std::size_t trace_samples = 0;
  /// Host worker threads for wall-clock-parallel payload execution
  /// (0 = auto via RXC_HOST_THREADS / hardware, 1 = sequential reference).
  /// Virtual seconds are identical for every value.
  int host_threads = 0;
  /// The virtual machine to run on (geometry + cycle-cost table); defaults
  /// to the cell-2007 preset, the paper's QS20 blade.
  cell::DeviceModel device;
};

struct CellRunResult {
  double virtual_seconds = 0.0;
  ScheduleResult schedule;
  /// Functional outputs of the tasks that actually executed.
  std::vector<double> task_log_likelihoods;
  std::vector<std::string> task_newicks;
  /// Aggregate kernel work of the executed tasks.
  lh::KernelCounters counters;
  /// Virtual-time breakdown by kernel kind over executed tasks (the
  /// simulator's gprof: the paper reports newview 76.8%, makenewz 19.2%,
  /// evaluate 2.4% on the PPE build).
  KernelProfile profile;
  /// DMA-stall cycles summed over executed tasks' critical SPEs (the sweep
  /// tooling's stall column; replayed tasks are not double-counted).
  cell::VCycles dma_stall_cycles = 0.0;
  /// Executed tasks vs replayed tasks.
  std::size_t executed_tasks = 0;
  std::size_t replayed_tasks = 0;
};

/// Executes one task through a simulated-SPE executor and returns its trace
/// (functional results included).
TaskTrace execute_task(const seq::PatternAlignment& pa,
                       const lh::EngineConfig& engine_config,
                       const search::SearchOptions& search_options,
                       const search::AnalysisTask& task,
                       SpeExecutor& executor);
/// Same, for the machine-owning backend make_executor builds.
TaskTrace execute_task(const seq::PatternAlignment& pa,
                       const lh::EngineConfig& engine_config,
                       const search::SearchOptions& search_options,
                       const search::AnalysisTask& task,
                       CellExecutor& executor);

/// Runs `tasks` on the simulated Cell.
CellRunResult run_on_cell(const seq::PatternAlignment& pa,
                          const CellRunConfig& config,
                          const std::vector<search::AnalysisTask>& tasks);

/// LLP fan-out MGPS uses for a remainder of r (< spe_count) tasks: the
/// widest power-of-two fan-out that keeps every remaining process on its
/// own SPE set.  On the 8-SPE machine this is the paper's table — 1 task ->
/// 8 SPEs, 2 -> 4, 3-4 -> 2, 5+ -> 1 ("loop-level parallelism can be
/// extracted from up to four simultaneously executing MPI processes, using
/// two SPEs per loop", §5.3).
int mgps_llp_ways(std::size_t remaining, int spe_count);

}  // namespace rxc::core
