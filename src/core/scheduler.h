#pragma once
/// \file scheduler.h
/// Schedulers mapping task traces onto the machine (paper §5.1, §5.3).
///
///  * kNaive — the initial port: one MPI process per PPE hardware thread
///    (max 2), each offloading to its own SPE; six SPEs idle.
///  * kEdtlp — event-driven task-level parallelization: up to eight MPI
///    processes multiplexed on the two PPE threads with a switch-on-offload
///    policy; every SPE serves one process.
///  * kLlp — loop-level parallelization: few processes, each spreading its
///    offloaded loops across several SPEs (traces must be generated with
///    the matching llp_ways).
///
/// MGPS (the dynamic hybrid) is composed from these in port.h: batches of
/// eight run EDTLP, the remainder runs LLP — "More MPI processes are served
/// in batches of eight" (§5.3).
///
/// The model: processes execute their segments sequentially; SPEs are
/// private to a process; the two PPE hardware threads are the shared
/// resource (greedy earliest-free, SMT slowdown when more than one process
/// computes, context switch per signaled offload when oversubscribed).

#include <vector>

#include "cell/device_model.h"
#include "cell/program.h"
#include "cell/timeline.h"
#include "core/stage.h"
#include "core/trace.h"

namespace rxc::core {

enum class Policy { kNaive, kEdtlp, kLlp };

struct ScheduleConfig {
  Policy policy = Policy::kNaive;
  /// Concurrent processes: kNaive <= 2; kEdtlp <= 8; kLlp: processes *
  /// llp_ways <= 8.
  int processes = 2;
  /// SPEs each process's offloaded loops span.  Must match the llp_ways the
  /// traces were generated with (1 for kNaive/kEdtlp).
  int llp_ways = 1;

  /// Throws rxc::Error on combos illegal for `device`: processes < 1,
  /// kNaive beyond the PPE SMT width, kEdtlp beyond the SPE count, or kLlp
  /// with processes * llp_ways exceeding the SPE count.  Called by
  /// schedule_traces.
  void validate(const cell::DeviceModel& device) const;
};

struct ScheduleResult {
  cell::VCycles makespan = 0.0;
  cell::VCycles ppe_busy = 0.0;  ///< summed over both hardware threads
  cell::VCycles spe_busy = 0.0;  ///< summed over all SPEs
  std::uint64_t signaled_offloads = 0;
  std::uint64_t context_switches = 0;

  double seconds(const cell::CostParams& params) const {
    return params.seconds(static_cast<cell::Cycles>(makespan));
  }
};

/// Replays `tasks` (a work queue; processes pull dynamically) onto the
/// machine `device` describes (PPE SMT width, SPE count, cost table).
/// Traces are borrowed; the same trace may appear many times.
ScheduleResult schedule_traces(const cell::DeviceModel& device,
                               const std::vector<const TaskTrace*>& tasks,
                               const ScheduleConfig& config);

// --- static schedule extraction (schedule_ir.cpp) ---------------------------

/// Workload shape of the canonical offload pipeline extract_program models:
/// three chained newview() calls (tip-tip, tip-partial, partial-partial),
/// one evaluate() over the root partials, and one makenewz compound
/// (sumtable + Newton iterations) — one instance of every DMA/mailbox/
/// signal pattern the SPE executor can emit.
struct ProgramShape {
  std::size_t patterns = 256;  ///< alignment patterns (np)
  int categories = 4;          ///< rate categories (ncat)
  bool cat_mode = false;       ///< CAT (per-pattern category array) vs GAMMA
  bool site_lnl = false;       ///< evaluate also streams per-site lnl out
  int newton_iters = 2;        ///< nr_derivatives calls inside the compound
  /// edge_gradient() invocations appended after the compound (the
  /// all-branch gradient sweep); 0 keeps the historical program shape.
  int gradient_edges = 0;
};

/// The abstract Program the SPE executor WOULD execute for the canonical
/// pipeline at `stage` with `llp_ways` cooperating SPEs on `device` — the
/// executor's orchestration (strip mining, buffer layout, tag discipline,
/// mailbox/signal round trips, compound chaining, local-store watermarks)
/// mirrored op-for-op without touching a CellMachine.  Effective addresses
/// are offsets into a synthetic arena of disjoint 16-aligned regions.
/// Non-offloaded kernels contribute only their PPE join epoch.  Feed the
/// result to analysis::verify_program to prove the schedule fits the
/// device.  Throws rxc::Error on shapes/ways illegal for the device
/// (llp_ways outside [1, spe_count], zero patterns/categories).
cell::Program extract_program(const cell::DeviceModel& device, Stage stage,
                              int llp_ways, const ProgramShape& shape = {},
                              std::size_t strip_bytes = 2048);

/// The abstract Program for a newview_batch() of `count` independent
/// tip-tip invocations: payloads round-robined across the device's SPEs
/// (task i on SPE i % spe_count, lane-major issue order), records in task
/// order — the batcher's multi-lane path.  Falls back to the serial
/// per-task sequence exactly when the batcher would (count <= 1,
/// llp_ways != 1, newview not offloaded, or a single-SPE device).
cell::Program extract_batch_program(const cell::DeviceModel& device,
                                    Stage stage, std::size_t count,
                                    int llp_ways = 1,
                                    const ProgramShape& shape = {},
                                    std::size_t strip_bytes = 2048);

}  // namespace rxc::core
