#pragma once
/// \file scheduler.h
/// Schedulers mapping task traces onto the machine (paper §5.1, §5.3).
///
///  * kNaive — the initial port: one MPI process per PPE hardware thread
///    (max 2), each offloading to its own SPE; six SPEs idle.
///  * kEdtlp — event-driven task-level parallelization: up to eight MPI
///    processes multiplexed on the two PPE threads with a switch-on-offload
///    policy; every SPE serves one process.
///  * kLlp — loop-level parallelization: few processes, each spreading its
///    offloaded loops across several SPEs (traces must be generated with
///    the matching llp_ways).
///
/// MGPS (the dynamic hybrid) is composed from these in port.h: batches of
/// eight run EDTLP, the remainder runs LLP — "More MPI processes are served
/// in batches of eight" (§5.3).
///
/// The model: processes execute their segments sequentially; SPEs are
/// private to a process; the two PPE hardware threads are the shared
/// resource (greedy earliest-free, SMT slowdown when more than one process
/// computes, context switch per signaled offload when oversubscribed).

#include <vector>

#include "cell/device_model.h"
#include "cell/timeline.h"
#include "core/trace.h"

namespace rxc::core {

enum class Policy { kNaive, kEdtlp, kLlp };

struct ScheduleConfig {
  Policy policy = Policy::kNaive;
  /// Concurrent processes: kNaive <= 2; kEdtlp <= 8; kLlp: processes *
  /// llp_ways <= 8.
  int processes = 2;
  /// SPEs each process's offloaded loops span.  Must match the llp_ways the
  /// traces were generated with (1 for kNaive/kEdtlp).
  int llp_ways = 1;

  /// Throws rxc::Error on combos illegal for `device`: processes < 1,
  /// kNaive beyond the PPE SMT width, kEdtlp beyond the SPE count, or kLlp
  /// with processes * llp_ways exceeding the SPE count.  Called by
  /// schedule_traces.
  void validate(const cell::DeviceModel& device) const;
};

struct ScheduleResult {
  cell::VCycles makespan = 0.0;
  cell::VCycles ppe_busy = 0.0;  ///< summed over both hardware threads
  cell::VCycles spe_busy = 0.0;  ///< summed over all SPEs
  std::uint64_t signaled_offloads = 0;
  std::uint64_t context_switches = 0;

  double seconds(const cell::CostParams& params) const {
    return params.seconds(static_cast<cell::Cycles>(makespan));
  }
};

/// Replays `tasks` (a work queue; processes pull dynamically) onto the
/// machine `device` describes (PPE SMT width, SPE count, cost table).
/// Traces are borrowed; the same trace may appear many times.
ScheduleResult schedule_traces(const cell::DeviceModel& device,
                               const std::vector<const TaskTrace*>& tasks,
                               const ScheduleConfig& config);

}  // namespace rxc::core
