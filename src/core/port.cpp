#include "core/port.h"

#include <algorithm>

#include "obs/recorder.h"
#include "seq/bootstrap.h"
#include "support/error.h"
#include "support/log.h"

namespace rxc::core {

std::string stage_name(Stage stage) {
  switch (stage) {
    case Stage::kPpeOnly: return "ppe-only";
    case Stage::kOffloadNewview: return "offload-newview";
    case Stage::kFastExp: return "fast-exp";
    case Stage::kIntCond: return "int-cond";
    case Stage::kDoubleBuffer: return "double-buffer";
    case Stage::kVectorize: return "vectorize";
    case Stage::kDirectComm: return "direct-comm";
    case Stage::kOffloadAll: return "offload-all";
  }
  return "?";
}

TaskTrace execute_task(const seq::PatternAlignment& pa,
                       const lh::EngineConfig& engine_config,
                       const search::SearchOptions& search_options,
                       const search::AnalysisTask& task,
                       SpeExecutor& executor) {
  obs::ScopedTimer span("core.execute_task", "port");
  executor.begin_task();
  lh::LikelihoodEngine engine(pa, engine_config);
  engine.set_executor(&executor);
  if (task.kind == search::TaskKind::kBootstrap) {
    Rng rng(task.seed ^ 0xb005eedULL);
    engine.set_pattern_weights(seq::bootstrap_weights(pa, rng));
  }
  const search::SearchResult sr =
      search::run_search(pa, engine, search_options, task.seed);
  TaskTrace trace = executor.take_trace();
  trace.log_likelihood = sr.log_likelihood;
  trace.newick = sr.tree.to_newick(pa.names());
  return trace;
}

TaskTrace execute_task(const seq::PatternAlignment& pa,
                       const lh::EngineConfig& engine_config,
                       const search::SearchOptions& search_options,
                       const search::AnalysisTask& task,
                       CellExecutor& executor) {
  return execute_task(pa, engine_config, search_options, task,
                      executor.spe());
}

int mgps_llp_ways(std::size_t remaining) {
  if (remaining <= 1) return 8;
  if (remaining == 2) return 4;
  if (remaining <= 4) return 2;
  return 1;
}

namespace {

/// Executes (or replays) a batch of tasks with a given LLP fan-out and
/// returns the trace pointers in task order plus the executed traces.
struct TraceBatch {
  std::vector<TaskTrace> owned;
  std::vector<const TaskTrace*> order;
};

TraceBatch build_traces(const seq::PatternAlignment& pa,
                        const CellRunConfig& cfg,
                        std::span<const search::AnalysisTask> tasks,
                        int llp_ways, double eib_contention,
                        int concurrent_workers, CellRunResult& result) {
  cell::CellMachine machine(cfg.params);
  SpeExecConfig exec_cfg;
  exec_cfg.toggles = stage_toggles(cfg.stage);
  exec_cfg.llp_ways = llp_ways;
  exec_cfg.eib_contention = eib_contention;
  exec_cfg.mailbox_contention = std::max(1, concurrent_workers);
  exec_cfg.host_threads = cfg.host_threads;
  SpeExecutor executor(machine, exec_cfg);

  TraceBatch batch;
  const std::size_t to_execute =
      cfg.trace_samples == 0
          ? tasks.size()
          : std::min<std::size_t>(cfg.trace_samples, tasks.size());
  batch.owned.reserve(to_execute);
  for (std::size_t i = 0; i < to_execute; ++i) {
    batch.owned.push_back(
        execute_task(pa, cfg.engine, cfg.search, tasks[i], executor));
    const TaskTrace& t = batch.owned.back();
    result.task_log_likelihoods.push_back(t.log_likelihood);
    result.task_newicks.push_back(t.newick);
    result.counters += t.counters;
    result.profile += t.profile();
    ++result.executed_tasks;
  }
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    batch.order.push_back(&batch.owned[i % to_execute]);
    if (i >= to_execute) ++result.replayed_tasks;
  }
  return batch;
}

double contention_for(const cell::CostParams& params, int active_spes) {
  return 1.0 + params.eib_contention_per_spe * std::max(0, active_spes - 1);
}

}  // namespace

CellRunResult run_on_cell(const seq::PatternAlignment& pa,
                          const CellRunConfig& config,
                          const std::vector<search::AnalysisTask>& tasks) {
  RXC_REQUIRE(!tasks.empty(), "run_on_cell: no tasks");
  obs::ScopedTimer span("core.run_on_cell", "port");
  CellRunResult result;
  const std::span<const search::AnalysisTask> all(tasks);

  switch (config.scheduler) {
    case SchedulerModel::kNaiveMpi: {
      RXC_REQUIRE(config.workers >= 1 && config.workers <= cell::kPpeThreads,
                  "naive port supports 1 or 2 workers (PPE SMT width)");
      const TraceBatch batch = build_traces(
          pa, config, all, 1,
          contention_for(config.params, config.workers), config.workers,
          result);
      ScheduleConfig sc{Policy::kNaive, config.workers};
      result.schedule = schedule_traces(config.params, batch.order, sc);
      break;
    }
    case SchedulerModel::kEdtlp: {
      const TraceBatch batch = build_traces(
          pa, config, all, 1, contention_for(config.params, cell::kSpeCount),
          cell::kSpeCount, result);
      ScheduleConfig sc{Policy::kEdtlp, cell::kSpeCount};
      result.schedule = schedule_traces(config.params, batch.order, sc);
      break;
    }
    case SchedulerModel::kLlp: {
      RXC_REQUIRE(config.llp_ways >= 1 && config.llp_ways <= cell::kSpeCount,
                  "llp_ways must be 1..8");
      const TraceBatch batch = build_traces(
          pa, config, all, config.llp_ways,
          contention_for(config.params, cell::kSpeCount),
          std::max(1, cell::kSpeCount / config.llp_ways), result);
      ScheduleConfig sc{Policy::kLlp,
                        std::max(1, cell::kSpeCount / config.llp_ways),
                        config.llp_ways};
      result.schedule = schedule_traces(config.params, batch.order, sc);
      break;
    }
    case SchedulerModel::kMgps: {
      // Batches of eight run EDTLP; the remainder switches to LLP with the
      // widest fan-out that keeps all SPEs fed (§5.3).
      const std::size_t full = tasks.size() / cell::kSpeCount * cell::kSpeCount;
      ScheduleResult total;
      if (full > 0) {
        const TraceBatch batch = build_traces(
            pa, config, all.subspan(0, full), 1,
            contention_for(config.params, cell::kSpeCount), cell::kSpeCount,
            result);
        ScheduleConfig sc{Policy::kEdtlp, cell::kSpeCount};
        total = schedule_traces(config.params, batch.order, sc);
      }
      const std::size_t rem = tasks.size() - full;
      if (rem > 0) {
        const int ways = mgps_llp_ways(rem);
        const TraceBatch batch = build_traces(
            pa, config, all.subspan(full), ways,
            contention_for(config.params, cell::kSpeCount),
            static_cast<int>(rem), result);
        ScheduleConfig sc{ways > 1 ? Policy::kLlp : Policy::kEdtlp,
                          static_cast<int>(rem), ways};
        const ScheduleResult tail =
            schedule_traces(config.params, batch.order, sc);
        total.makespan += tail.makespan;
        total.ppe_busy += tail.ppe_busy;
        total.spe_busy += tail.spe_busy;
        total.signaled_offloads += tail.signaled_offloads;
        total.context_switches += tail.context_switches;
      }
      result.schedule = total;
      break;
    }
  }

  result.virtual_seconds =
      result.schedule.makespan / config.params.clock_hz;
  log_info("cell run: stage=" + stage_name(config.stage) + " tasks=" +
           std::to_string(tasks.size()) + " vtime=" +
           std::to_string(result.virtual_seconds) + "s");
  return result;
}

}  // namespace rxc::core
