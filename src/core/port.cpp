#include "core/port.h"

#include <algorithm>

#include "obs/recorder.h"
#include "seq/bootstrap.h"
#include "support/error.h"
#include "support/log.h"

namespace rxc::core {

std::string stage_name(Stage stage) {
  switch (stage) {
    case Stage::kPpeOnly: return "ppe-only";
    case Stage::kOffloadNewview: return "offload-newview";
    case Stage::kFastExp: return "fast-exp";
    case Stage::kIntCond: return "int-cond";
    case Stage::kDoubleBuffer: return "double-buffer";
    case Stage::kVectorize: return "vectorize";
    case Stage::kDirectComm: return "direct-comm";
    case Stage::kOffloadAll: return "offload-all";
  }
  return "?";
}

TaskTrace execute_task(const seq::PatternAlignment& pa,
                       const lh::EngineConfig& engine_config,
                       const search::SearchOptions& search_options,
                       const search::AnalysisTask& task,
                       SpeExecutor& executor) {
  obs::ScopedTimer span("core.execute_task", "port");
  executor.begin_task();
  lh::LikelihoodEngine engine(pa, engine_config);
  engine.set_executor(&executor);
  if (task.kind == search::TaskKind::kBootstrap) {
    Rng rng(task.seed ^ 0xb005eedULL);
    engine.set_pattern_weights(seq::bootstrap_weights(pa, rng));
  }
  const search::SearchResult sr =
      search::run_search(pa, engine, search_options, task.seed);
  TaskTrace trace = executor.take_trace();
  trace.log_likelihood = sr.log_likelihood;
  trace.newick = sr.tree.to_newick(pa.names());
  return trace;
}

TaskTrace execute_task(const seq::PatternAlignment& pa,
                       const lh::EngineConfig& engine_config,
                       const search::SearchOptions& search_options,
                       const search::AnalysisTask& task,
                       CellExecutor& executor) {
  return execute_task(pa, engine_config, search_options, task,
                      executor.spe());
}

int mgps_llp_ways(std::size_t remaining, int spe_count) {
  const int budget = std::max<int>(
      1, spe_count / static_cast<int>(std::max<std::size_t>(1, remaining)));
  int ways = 1;
  while (ways * 2 <= budget) ways *= 2;
  return ways;
}

namespace {

/// Executes (or replays) a batch of tasks with a given LLP fan-out and
/// returns the trace pointers in task order plus the executed traces.
struct TraceBatch {
  std::vector<TaskTrace> owned;
  std::vector<const TaskTrace*> order;
};

TraceBatch build_traces(const seq::PatternAlignment& pa,
                        const CellRunConfig& cfg,
                        std::span<const search::AnalysisTask> tasks,
                        int llp_ways, int active_spes,
                        int concurrent_workers, CellRunResult& result) {
  cell::CellMachine machine(cfg.device);
  SpeExecConfig exec_cfg;
  exec_cfg.toggles = stage_toggles(cfg.stage);
  exec_cfg.llp_ways = llp_ways;
  exec_cfg.active_spes = active_spes;
  exec_cfg.concurrent_workers = std::max(1, concurrent_workers);
  exec_cfg.host_threads = cfg.host_threads;
  SpeExecutor executor(machine, exec_cfg);

  TraceBatch batch;
  const std::size_t to_execute =
      cfg.trace_samples == 0
          ? tasks.size()
          : std::min<std::size_t>(cfg.trace_samples, tasks.size());
  batch.owned.reserve(to_execute);
  for (std::size_t i = 0; i < to_execute; ++i) {
    batch.owned.push_back(
        execute_task(pa, cfg.engine, cfg.search, tasks[i], executor));
    const TaskTrace& t = batch.owned.back();
    result.task_log_likelihoods.push_back(t.log_likelihood);
    result.task_newicks.push_back(t.newick);
    result.counters += t.counters;
    result.profile += t.profile();
    result.dma_stall_cycles += t.total_dma_stall();
    ++result.executed_tasks;
  }
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    batch.order.push_back(&batch.owned[i % to_execute]);
    if (i >= to_execute) ++result.replayed_tasks;
  }
  return batch;
}

}  // namespace

CellRunResult run_on_cell(const seq::PatternAlignment& pa,
                          const CellRunConfig& config,
                          const std::vector<search::AnalysisTask>& tasks) {
  RXC_REQUIRE(!tasks.empty(), "run_on_cell: no tasks");
  obs::ScopedTimer span("core.run_on_cell", "port");
  config.device.validate();
  const int spes = config.device.spe_count;
  CellRunResult result;
  const std::span<const search::AnalysisTask> all(tasks);

  switch (config.scheduler) {
    case SchedulerModel::kNaiveMpi: {
      RXC_REQUIRE(
          config.workers >= 1 && config.workers <= config.device.ppe_threads,
          "naive port: workers must not exceed the device's PPE SMT width (" +
              std::to_string(config.device.ppe_threads) + ")");
      const TraceBatch batch = build_traces(pa, config, all, 1,
                                            config.workers, config.workers,
                                            result);
      ScheduleConfig sc{Policy::kNaive, config.workers};
      result.schedule = schedule_traces(config.device, batch.order, sc);
      break;
    }
    case SchedulerModel::kEdtlp: {
      const TraceBatch batch =
          build_traces(pa, config, all, 1, spes, spes, result);
      ScheduleConfig sc{Policy::kEdtlp, spes};
      result.schedule = schedule_traces(config.device, batch.order, sc);
      break;
    }
    case SchedulerModel::kLlp: {
      RXC_REQUIRE(config.llp_ways >= 1 && config.llp_ways <= spes,
                  "llp_ways must be 1.." + std::to_string(spes) +
                      " for device '" + config.device.name + "'");
      const TraceBatch batch = build_traces(
          pa, config, all, config.llp_ways, spes,
          std::max(1, spes / config.llp_ways), result);
      ScheduleConfig sc{Policy::kLlp, std::max(1, spes / config.llp_ways),
                        config.llp_ways};
      result.schedule = schedule_traces(config.device, batch.order, sc);
      break;
    }
    case SchedulerModel::kMgps: {
      // Batches of one-process-per-SPE run EDTLP; the remainder switches to
      // LLP with the widest fan-out that keeps all SPEs fed (§5.3).
      const std::size_t full = tasks.size() / spes * spes;
      ScheduleResult total;
      if (full > 0) {
        const TraceBatch batch = build_traces(pa, config, all.subspan(0, full),
                                              1, spes, spes, result);
        ScheduleConfig sc{Policy::kEdtlp, spes};
        total = schedule_traces(config.device, batch.order, sc);
      }
      const std::size_t rem = tasks.size() - full;
      if (rem > 0) {
        const int ways = mgps_llp_ways(rem, spes);
        const TraceBatch batch =
            build_traces(pa, config, all.subspan(full), ways, spes,
                         static_cast<int>(rem), result);
        ScheduleConfig sc{ways > 1 ? Policy::kLlp : Policy::kEdtlp,
                          static_cast<int>(rem), ways};
        const ScheduleResult tail =
            schedule_traces(config.device, batch.order, sc);
        total.makespan += tail.makespan;
        total.ppe_busy += tail.ppe_busy;
        total.spe_busy += tail.spe_busy;
        total.signaled_offloads += tail.signaled_offloads;
        total.context_switches += tail.context_switches;
      }
      result.schedule = total;
      break;
    }
  }

  result.virtual_seconds =
      result.schedule.makespan / config.device.cost.clock_hz;
  log_info("cell run: stage=" + stage_name(config.stage) + " tasks=" +
           std::to_string(tasks.size()) + " vtime=" +
           std::to_string(result.virtual_seconds) + "s");
  return result;
}

}  // namespace rxc::core
