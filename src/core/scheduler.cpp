#include "core/scheduler.h"

#include <algorithm>
#include <queue>

#include "support/error.h"

namespace rxc::core {

ScheduleResult schedule_traces(const cell::CostParams& params,
                               const std::vector<const TaskTrace*>& tasks,
                               const ScheduleConfig& config) {
  RXC_REQUIRE(config.processes >= 1, "need at least one process");
  switch (config.policy) {
    case Policy::kNaive:
      RXC_REQUIRE(config.processes <= cell::kPpeThreads,
                  "naive port: one MPI process per PPE thread");
      break;
    case Policy::kEdtlp:
      RXC_REQUIRE(config.processes <= cell::kSpeCount,
                  "EDTLP: at most one process per SPE");
      break;
    case Policy::kLlp:
      break;  // validated against llp_ways by the caller
  }

  const int nproc = std::min<int>(config.processes,
                                  static_cast<int>(tasks.size()));
  ScheduleResult result;
  if (nproc == 0) return result;

  const bool oversubscribed = nproc > cell::kPpeThreads;
  const double smt = nproc >= 2 ? params.ppe_smt_factor : 1.0;

  std::vector<cell::ResourceTimeline> ppe(cell::kPpeThreads);

  struct ProcState {
    int id;
    cell::VCycles ready = 0.0;
    const TaskTrace* trace = nullptr;
    std::size_t seg = 0;
  };
  struct Later {
    bool operator()(const ProcState& a, const ProcState& b) const {
      return a.ready > b.ready;
    }
  };
  std::priority_queue<ProcState, std::vector<ProcState>, Later> heap;
  std::size_t next_task = 0;

  for (int p = 0; p < nproc; ++p) {
    ProcState ps{p};
    ps.trace = tasks[next_task++];
    heap.push(ps);
  }

  cell::VCycles makespan = 0.0;
  while (!heap.empty()) {
    ProcState ps = heap.top();
    heap.pop();
    if (ps.seg >= ps.trace->segments.size()) {
      // Task finished: pull the next one from the queue (dynamic
      // master-worker distribution).
      makespan = std::max(makespan, ps.ready);
      if (next_task < tasks.size()) {
        ps.trace = tasks[next_task++];
        ps.seg = 0;
        heap.push(ps);
      }
      continue;
    }
    const TraceSegment& seg = ps.trace->segments[ps.seg++];

    double ppe_cycles = seg.ppe_cycles * smt;
    if (seg.signaled) {
      ++result.signaled_offloads;
      if (oversubscribed && config.policy != Policy::kLlp) {
        // Switch-on-offload: the scheduler yields the PPE thread whenever a
        // process dispatches work to an SPE (§5.3).
        ppe_cycles += params.ppe_context_switch_cycles * smt;
        ++result.context_switches;
      }
    }
    cell::VCycles t = ps.ready;
    if (ppe_cycles > 0.0) {
      const cell::VCycles start =
          cell::acquire_earliest(ppe, t, ppe_cycles);
      result.ppe_busy += ppe_cycles;
      t = start + ppe_cycles;
    }
    // The process's SPE(s) are private and therefore immediately available.
    if (seg.spe_cycles > 0.0) {
      t += seg.spe_cycles;
      result.spe_busy += seg.spe_cycles * seg.llp_ways;
    }
    ps.ready = t;
    heap.push(ps);
  }

  result.makespan = makespan;
  return result;
}

}  // namespace rxc::core
