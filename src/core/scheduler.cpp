#include "core/scheduler.h"

#include <algorithm>
#include <queue>
#include <string>

#include "analysis/analyze.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "support/error.h"
#include "support/log.h"

namespace rxc::core {

void ScheduleConfig::validate(const cell::DeviceModel& device) const {
  RXC_REQUIRE(processes >= 1, "need at least one process");
  RXC_REQUIRE(llp_ways >= 1 && llp_ways <= device.spe_count,
              "llp_ways must be 1.." + std::to_string(device.spe_count) +
                  " for device '" + device.name + "'");
  switch (policy) {
    case Policy::kNaive:
      RXC_REQUIRE(processes <= device.ppe_threads,
                  "naive port: one MPI process per PPE thread");
      break;
    case Policy::kEdtlp:
      RXC_REQUIRE(processes <= device.spe_count,
                  "EDTLP: at most one process per SPE");
      break;
    case Policy::kLlp:
      RXC_REQUIRE(processes * llp_ways <= device.spe_count,
                  "LLP: processes * llp_ways must not exceed the SPE count "
                  "(" +
                      std::to_string(processes) + " * " +
                      std::to_string(llp_ways) + " > " +
                      std::to_string(device.spe_count) + ")");
      break;
  }
}

ScheduleResult schedule_traces(const cell::DeviceModel& device,
                               const std::vector<const TaskTrace*>& tasks,
                               const ScheduleConfig& config) {
  config.validate(device);
  const cell::CostParams& params = device.cost;

  const int nproc = std::min<int>(config.processes,
                                  static_cast<int>(tasks.size()));
  ScheduleResult result;
  if (nproc == 0) return result;

  // Scheduling traces produced by racy executions replays wrong timings
  // (Opt VII staleness): surface it once per schedule when the detector is
  // armed and already holds findings.
  if (analysis::RaceDetector* det = analysis::global_detector()) {
    const analysis::AnalysisReport report = det->report();
    if (!report.ok()) {
      static obs::Counter& tainted = obs::counter("sched.tainted_schedules");
      tainted.add();
      log_warn("scheduler: scheduling " + std::to_string(tasks.size()) +
               " trace(s) while the race detector holds " +
               std::to_string(report.total) +
               " finding(s); replayed timings may reflect racy executions");
    }
  }

  const bool oversubscribed = nproc > device.ppe_threads;
  const double smt = nproc >= 2 ? params.ppe_smt_factor : 1.0;
  // Virtual-timeline export: cycles -> microseconds at the machine clock.
  const bool tracing = obs::recording();
  const double us = 1e6 / params.clock_hz;

  std::vector<cell::ResourceTimeline> ppe(device.ppe_threads);

  struct ProcState {
    int id;
    cell::VCycles ready = 0.0;
    const TaskTrace* trace = nullptr;
    std::size_t seg = 0;
  };
  struct Later {
    bool operator()(const ProcState& a, const ProcState& b) const {
      return a.ready > b.ready;
    }
  };
  std::priority_queue<ProcState, std::vector<ProcState>, Later> heap;
  std::size_t next_task = 0;

  for (int p = 0; p < nproc; ++p) {
    ProcState ps{p};
    ps.trace = tasks[next_task++];
    heap.push(ps);
  }

  cell::VCycles makespan = 0.0;
  while (!heap.empty()) {
    ProcState ps = heap.top();
    heap.pop();
    if (ps.seg >= ps.trace->segments.size()) {
      // Task finished: pull the next one from the queue (dynamic
      // master-worker distribution).
      makespan = std::max(makespan, ps.ready);
      if (next_task < tasks.size()) {
        ps.trace = tasks[next_task++];
        ps.seg = 0;
        heap.push(ps);
      }
      continue;
    }
    const TraceSegment& seg = ps.trace->segments[ps.seg++];
    const std::string proc_args =
        tracing ? "{\"proc\":" + std::to_string(ps.id) + "}" : std::string();

    double ppe_cycles = seg.ppe_cycles * smt;
    if (seg.signaled) {
      ++result.signaled_offloads;
      if (oversubscribed && config.policy != Policy::kLlp) {
        // Switch-on-offload: the scheduler yields the PPE thread whenever a
        // process dispatches work to an SPE (§5.3).
        ppe_cycles += params.ppe_context_switch_cycles * smt;
        ++result.context_switches;
      }
    }
    cell::VCycles t = ps.ready;
    cell::VCycles ppe_start = t;
    if (ppe_cycles > 0.0) {
      std::size_t which = 0;
      const cell::VCycles start =
          cell::acquire_earliest(ppe, t, ppe_cycles, &which);
      result.ppe_busy += ppe_cycles;
      ppe_start = start;
      t = start + ppe_cycles;
      if (tracing) {
        obs::record_span(obs::Timeline::kVirtual, kernel_kind_name(seg.kind),
                         "ppe", static_cast<int>(which), start * us,
                         ppe_cycles * us, proc_args);
        if (seg.signal_cycles > 0.0)
          obs::record_span(obs::Timeline::kVirtual, "signal", "ppe-signal",
                           static_cast<int>(which), start * us,
                           seg.signal_cycles * smt * us, proc_args);
      }
    }
    // The process's SPE(s) are private and therefore immediately available.
    if (seg.spe_cycles > 0.0) {
      if (tracing) {
        const cell::VCycles busy = seg.spe_cycles - seg.dma_stall_cycles;
        for (int k = 0; k < seg.llp_ways; ++k) {
          const int lane =
              obs::kLaneSpeBase + ps.id * config.llp_ways + k;
          if (seg.signaled && t > ppe_start)
            obs::record_span(obs::Timeline::kVirtual, "mailbox-wait",
                             "spe-wait", lane, ppe_start * us,
                             (t - ppe_start) * us, proc_args);
          obs::record_span(obs::Timeline::kVirtual,
                           kernel_kind_name(seg.kind), "spe", lane, t * us,
                           busy * us, proc_args);
          if (seg.dma_stall_cycles > 0.0)
            obs::record_span(obs::Timeline::kVirtual, "dma-stall", "spe-dma",
                             lane, (t + busy) * us,
                             seg.dma_stall_cycles * us, proc_args);
        }
      }
      t += seg.spe_cycles;
      result.spe_busy += seg.spe_cycles * seg.llp_ways;
    }
    ps.ready = t;
    heap.push(ps);
  }

  result.makespan = makespan;
  static obs::Counter& signaled = obs::counter("sched.signaled_offloads");
  static obs::Counter& switches = obs::counter("sched.context_switches");
  signaled.add(result.signaled_offloads);
  switches.add(result.context_switches);
  return result;
}

}  // namespace rxc::core
