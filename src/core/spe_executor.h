#pragma once
/// \file spe_executor.h
/// Kernel executor that runs the likelihood kernels "on" the simulated Cell
/// (the port proper).  Routing follows the stage toggles:
///
///  * offloaded kernels execute strip-mined on SPE local stores — inputs
///    are DMA'd in 2 KB strips through the simulated MFC (with or without
///    double buffering), the real kernel code runs on the local-store
///    buffers, outputs are DMA'd back, and the SPU clock is charged with
///    the cost model;
///  * non-offloaded kernels execute on the host with PPE cycle accounting
///    (the original scalar/libm code path, like RAxML's PPE build).
///
/// Results are numerically equal to the host executor's up to summation
/// reassociation across strips.  Every invocation appends a TraceSegment;
/// the schedulers replay the trace onto machine resources.

#include <memory>
#include <vector>

#include "cell/spu.h"
#include "core/stage.h"
#include "core/trace.h"
#include "likelihood/executor.h"
#include "support/thread_pool.h"

namespace rxc::core {

struct SpeExecConfig {
  StageToggles toggles;
  /// SPEs cooperating on each offloaded invocation (loop-level
  /// parallelization); 1 = plain task-level offload.
  int llp_ways = 1;
  /// SPEs the scheduler expects to stream DMA concurrently machine-wide:
  /// the executor charges the device model's EIB contention curve,
  /// DeviceModel::eib_factor(active_spes), on every transfer.  1 = this
  /// invocation's SPEs have the bus to themselves.
  int active_spes = 1;
  /// Worker processes signaling mailboxes concurrently: the PPE serializes
  /// MMIO mailbox polls across them, so the per-signal cost grows with
  /// parallelism (the paper's §5.2.6 observation that the direct-memory
  /// optimization "scales with parallelism"); the executor charges
  /// DeviceModel::mailbox_factor(concurrent_workers).  Direct
  /// memory-to-memory signaling is unaffected.  Set by the port to the
  /// concurrent worker count.
  int concurrent_workers = 1;
  /// Strip buffer size (the paper settles on 2 KB, §5.2.4).
  std::size_t strip_bytes = 2048;
  /// Host worker threads for wall-clock-parallel payload execution (the
  /// two-clock model: virtual cycles and numerics are identical for every
  /// value — this knob only changes how fast the simulation itself runs).
  /// 0 = auto (RXC_HOST_THREADS, else hardware concurrency); 1 = the
  /// sequential reference path.
  int host_threads = 0;
  /// Event-id base for the owned machine (CellExecutor only): 0 keeps the
  /// historical ids, a cell::reserve_spu_event_base() block makes this
  /// device's events process-unique so a global event sink (the race
  /// detector) can tell concurrently-running devices apart.
  int event_base = 0;
};

class SpeExecutor final : public lh::KernelExecutor {
public:
  /// Uses machine.spe(0 .. llp_ways-1).  The machine must outlive this.
  SpeExecutor(cell::CellMachine& machine, SpeExecConfig config);

  void newview(const lh::NewviewTask& task) override;
  /// Batch of independent newview invocations.  Semantically the serial
  /// loop (same segments, counters, epochs, numerics, virtual cycles); with
  /// host_threads > 1 and llp_ways == 1 the payloads run concurrently,
  /// round-robined across the machine's SPEs.  Virtual accounting is
  /// unchanged because every payload drains its MFC tags before returning,
  /// so per-invocation elapsed cycles are independent of which (drained)
  /// SPU hosts it and of the SPU's absolute clock.
  void newview_batch(const lh::NewviewTask* tasks, std::size_t count) override;
  double evaluate(const lh::EvaluateTask& task) override;
  void sumtable(const lh::SumtableTask& task) override;
  lh::NrResult nr_derivatives(const lh::NrTask& task) override;
  /// Fused all-branch-gradient kernel.  Offloaded (stage >= offload-rest) it
  /// streams the edge's two directed partials through local store in strips
  /// — sumtable slots are built in registers, so unlike makenewz nothing is
  /// DMA'd back; only the three reduced doubles return with the completion
  /// signal.  The functional result is always computed whole-range from the
  /// main-memory mirror (device models stay performance-only).
  lh::NrResult edge_gradient(const lh::EdgeGradientTask& task) override;
  /// Batch of independent edge gradients, round-robined across the
  /// machine's SPEs exactly like newview_batch (same gating, same
  /// original-order trace/accounting).
  void edge_gradient_batch(const lh::EdgeGradientTask* tasks,
                           std::size_t count, lh::NrResult* results) override;
  void begin_compound() override;
  void end_compound() override;

  /// Clears the trace (call at task start).
  void begin_task();
  /// Moves the accumulated trace out (segments + kernel counters).
  TaskTrace take_trace();

  const SpeExecConfig& config() const { return cfg_; }
  /// Resolved host worker count (config knob, RXC_HOST_THREADS, hardware).
  int host_threads() const { return host_threads_; }

private:
  // --- cost model helpers -------------------------------------------------
  double spe_exp_cycles() const;
  double spe_log_cycles() const;
  /// SPU cycles for `flops` scalar-equivalent FP operations under the
  /// configured vectorization.
  double spe_flop_cycles(double flops) const;
  double spe_cond_cycles() const;
  /// PPE-side signal+orchestration for one offload; 0 inside a compound
  /// after its first signaled segment.  Sets last_offload_signaled_ and
  /// last_signal_cycles_ (the signal component of the returned total).
  double offload_ppe_cycles(int ways);

  /// Appends a segment and handles compound bookkeeping.  `dma_stall` is
  /// the critical SPE's stall time within `spe`.  `base_spe` is the machine
  /// SPE hosting the invocation's first way (nonzero for batch payloads
  /// round-robined off SPE 0) — the functional mailbox round trip and the
  /// direct-signal protocol events must target the SPUs that actually ran.
  void record(KernelKind kind, double ppe, double spe, int ways,
              bool signaled, double dma_stall = 0.0, int base_spe = 0);

  /// Strip length in patterns for a per-pattern footprint (floored to a
  /// multiple of 16 so every strip offset stays 128-bit aligned).
  std::size_t strip_patterns(std::size_t pattern_bytes) const;

  /// Runs `body(spu, lo, n, strip)` over pattern chunks on `ways` SPEs and
  /// returns the max per-SPE elapsed cycles.  `pattern_bytes` is the
  /// per-pattern footprint used to derive the strip length.  `stall_out`,
  /// when set, receives the DMA-stall portion of the critical SPE's time.
  /// With host_threads > 1 the per-way payloads run concurrently on the
  /// pool; per-SPE state is thread-private and the max reduction runs in
  /// fixed way order afterwards, so the result is bitwise-identical to the
  /// sequential loop for any thread count.
  template <class Body>
  double run_chunks(std::size_t np, std::size_t pattern_bytes, int ways,
                    const Body& body, cell::VCycles* stall_out = nullptr);

  /// One way's worth of the offloaded newview strip loop on `spu` for
  /// patterns [lo, lo+n); adds this way's scale events into *scale_events
  /// (a per-way slot under concurrent execution).
  void newview_payload(const lh::NewviewTask& task, cell::Spu& spu,
                       std::size_t lo, std::size_t n, std::size_t strip,
                       std::uint64_t* scale_events);

  /// One way's worth of the offloaded edge-gradient strip loop (DMA gets +
  /// cycle charges only; the fused kernel leaves nothing to put back).
  void edge_gradient_payload(const lh::EdgeGradientTask& task, cell::Spu& spu,
                             std::size_t lo, std::size_t n, std::size_t strip);

  /// Functional edge-gradient result from the main-memory mirror with the
  /// configured stage toggles (exp flavour, SIMD on/off).
  lh::NrResult edge_gradient_mirror(const lh::EdgeGradientTask& task) const;

  /// Lazily constructed pool for wall-clock-parallel payload execution.
  ThreadPool& pool();

  // PPE (host) execution of non-offloaded kernels, with cycle estimate.
  double ppe_newview_cycles(const lh::NewviewTask& task) const;
  double ppe_evaluate_cycles(const lh::EvaluateTask& task) const;
  double ppe_sumtable_cycles(const lh::SumtableTask& task) const;
  double ppe_nr_cycles(const lh::NrTask& task) const;
  double ppe_edge_gradient_cycles(const lh::EdgeGradientTask& task) const;

  cell::CellMachine* machine_;
  SpeExecConfig cfg_;
  /// Contention factors resolved once from the machine's device model
  /// (DeviceModel::eib_factor / mailbox_factor over the config's counts).
  double eib_factor_ = 1.0;
  double mailbox_factor_ = 1.0;
  int host_threads_ = 1;  ///< resolved worker count (see SpeExecConfig)
  std::unique_ptr<ThreadPool> pool_;
  lh::HostExecutor ppe_exec_;  ///< original code path (libm, branchy, scalar)
  std::vector<TraceSegment> segments_;
  bool in_compound_ = false;
  bool compound_signaled_ = false;
  /// Whether the most recent offload_ppe_cycles() call actually dispatched
  /// (false for compound continuations, which run SPE-side without a PPE
  /// round trip).
  bool last_offload_signaled_ = true;
  /// Signal component of the most recent offload_ppe_cycles() result.
  double last_signal_cycles_ = 0.0;
  /// Set when the compound's sumtable fits in local store: the offloaded
  /// makenewz keeps it resident, so Newton iterations run DMA-free (the
  /// communication saving §5.2.7 reports).
  bool sumtable_resident_ = false;
};

/// Self-contained simulated-Cell executor: owns the machine and the
/// SpeExecutor on top of it.  This is what lh::make_executor builds for
/// ExecutorKind::kSpe — callers that only need kernels use the
/// KernelExecutor interface; callers that replay traces downcast and use
/// begin_task()/take_trace().
class CellExecutor final : public lh::KernelExecutor {
public:
  /// Builds the machine `device` describes and the SpeExecutor on top.
  explicit CellExecutor(SpeExecConfig config, cell::DeviceModel device = {});

  void newview(const lh::NewviewTask& task) override;
  void newview_batch(const lh::NewviewTask* tasks, std::size_t count) override;
  double evaluate(const lh::EvaluateTask& task) override;
  void sumtable(const lh::SumtableTask& task) override;
  lh::NrResult nr_derivatives(const lh::NrTask& task) override;
  lh::NrResult edge_gradient(const lh::EdgeGradientTask& task) override;
  void edge_gradient_batch(const lh::EdgeGradientTask* tasks,
                           std::size_t count, lh::NrResult* results) override;
  void begin_compound() override;
  void end_compound() override;
  void reset_counters() override;

  void begin_task();
  TaskTrace take_trace();

  cell::CellMachine& machine() { return machine_; }
  SpeExecutor& spe() { return exec_; }

private:
  /// Mirrors the inner executor's counters into counters_ so the
  /// non-virtual KernelExecutor::counters() accessor stays truthful.
  void sync_counters() { counters_ = exec_.counters(); }

  cell::CellMachine machine_;
  SpeExecutor exec_;
};

/// Spec for a simulated-Cell executor at `stage` — the idiomatic way to ask
/// make_executor for the Cell backend.  Referencing this helper also pins
/// this translation unit into the link, which is what registers the kSpe
/// factory with lh::make_executor.
lh::ExecutorSpec cell_executor_spec(Stage stage, int llp_ways = 1);

/// Downcast to the Cell backend for machine-level access (counters,
/// invariants, trace replay) on executors built via make_executor.  Throws
/// rxc::Error when `exec` is not a CellExecutor.
CellExecutor& as_cell_executor(lh::KernelExecutor& exec);

}  // namespace rxc::core
