#include "core/spe_executor.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "analysis/analyze.h"
#include "cell/events.h"
#include "obs/metrics.h"
#include "support/error.h"

namespace rxc::core {
namespace {

using cell::LsAddr;
using cell::VCycles;

/// DMA-legal byte count for a strip of `n` elements of `size` bytes.
constexpr std::size_t dma_bytes(std::size_t n, std::size_t size) {
  return rxc::round_up(n * size, 16);
}

/// Scalar-equivalent FP work per pattern in the newview body (two 4x4
/// mat-vecs + elementwise product): the modeling constant behind stage V.
constexpr double kNewviewFlopsPerPattern = 56.0;
constexpr double kEvaluateFlopsPerPattern = 36.0;
constexpr double kSumtableFlopsPerPattern = 64.0;
constexpr double kNrFlopsPerPattern = 24.0;
/// The fused edge-gradient body does the sumtable math and the derivative
/// accumulation in one pass over each pattern slot.
constexpr double kEdgeGradientFlopsPerPattern =
    kSumtableFlopsPerPattern + kNrFlopsPerPattern;
/// FP work of building one transition matrix set (per category):
/// U * diag * V as 4x4x4 multiply-adds plus the diagonal products.
constexpr double kPmatFlopsPerCategory = 112.0;

}  // namespace

SpeExecutor::SpeExecutor(cell::CellMachine& machine, SpeExecConfig config)
    : machine_(&machine),
      cfg_(config),
      // The PPE runs the *original* code: libm exp, branchy conditional,
      // no SIMD — stage toggles only affect the SPE side.
      ppe_exec_(lh::KernelConfig{&lh::exp_libm,
                                 lh::ScalingCheck::kFloatBranch, false}) {
  RXC_REQUIRE(cfg_.llp_ways >= 1 && cfg_.llp_ways <= machine.spe_count(),
              "llp_ways out of range");
  RXC_REQUIRE(cfg_.active_spes >= 1, "active_spes must be >= 1");
  RXC_REQUIRE(cfg_.concurrent_workers >= 1,
              "concurrent_workers must be >= 1");
  RXC_REQUIRE(cfg_.strip_bytes >= 256, "strip buffer too small");
  RXC_REQUIRE(cfg_.host_threads >= 0 && cfg_.host_threads <= 64,
              "host_threads must be 0 (auto) or 1..64");
  eib_factor_ = machine.device().eib_factor(cfg_.active_spes);
  mailbox_factor_ = machine.device().mailbox_factor(cfg_.concurrent_workers);
  // Wall-clock workers: more than one per SPE buys nothing (a payload is a
  // serial strip loop), so clamp at the machine width.
  host_threads_ =
      std::min(cfg_.host_threads > 0 ? cfg_.host_threads : host_thread_count(),
               machine.spe_count());
  // Arms the race detector when RXC_ANALYZE is set (no-op otherwise).
  analysis::init_from_env();
}

ThreadPool& SpeExecutor::pool() {
  if (!pool_) pool_ = std::make_unique<ThreadPool>(host_threads_);
  return *pool_;
}

void SpeExecutor::begin_task() {
  segments_.clear();
  reset_counters();
  ppe_exec_.reset_counters();
  for (int i = 0; i < machine_->spe_count(); ++i)
    machine_->spe(i).reset_counters();
}

TaskTrace SpeExecutor::take_trace() {
  TaskTrace trace;
  trace.segments = std::move(segments_);
  trace.counters = counters_;
  segments_ = {};
  return trace;
}

void SpeExecutor::begin_compound() {
  in_compound_ = true;
  compound_signaled_ = false;
  sumtable_resident_ = false;
}

void SpeExecutor::end_compound() {
  in_compound_ = false;
  sumtable_resident_ = false;
}

// --- cost helpers -----------------------------------------------------------

double SpeExecutor::spe_exp_cycles() const {
  const auto& p = machine_->params();
  return cfg_.toggles.sdk_exp ? p.spu_exp_sdk_cycles : p.spu_exp_libm_cycles;
}

double SpeExecutor::spe_log_cycles() const {
  const auto& p = machine_->params();
  return cfg_.toggles.sdk_exp ? p.spu_log_sdk_cycles : p.spu_log_libm_cycles;
}

double SpeExecutor::spe_flop_cycles(double flops) const {
  const auto& p = machine_->params();
  if (!cfg_.toggles.vectorized) return flops * p.spu_dp_flop_cycles;
  // Two lanes per DP vector instruction, plus vector-construction overhead
  // amortized into the per-instruction charge elsewhere (callers add the
  // per-pattern build cost separately).
  return flops * 0.5 * p.spu_dp_vector_instr_cycles;
}

double SpeExecutor::spe_cond_cycles() const {
  const auto& p = machine_->params();
  return cfg_.toggles.int_cond ? p.spu_cond_int_cycles : p.spu_cond_fp_cycles;
}

double SpeExecutor::offload_ppe_cycles(int ways) {
  const auto& p = machine_->params();
  const double signal =
      cfg_.toggles.direct_comm
          ? p.direct_signal_cycles
          : p.mailbox_signal_cycles * mailbox_factor_;
  if (in_compound_ && compound_signaled_) {
    last_offload_signaled_ = false;
    last_signal_cycles_ = 0.0;
    return 0.0;
  }
  if (in_compound_) compound_signaled_ = true;
  last_offload_signaled_ = true;
  last_signal_cycles_ = 2.0 * signal * ways;
  // Once all three functions are SPE-resident, calls chain on the SPE and
  // the PPE's per-call marshal/wait work collapses (§5.2.7).
  const double overhead = cfg_.toggles.offload_rest
                              ? p.ppe_chained_overhead_cycles
                              : p.ppe_offload_overhead_cycles;
  // Send + result-return signal per cooperating SPE, plus orchestration.
  return overhead + 2.0 * signal * ways;
}

void SpeExecutor::record(KernelKind kind, double ppe, double spe, int ways,
                         bool signaled, double dma_stall, int base_spe) {
  if (signaled && !cfg_.toggles.direct_comm) {
    // Functional mailbox round trip (the pre-§5.2.6 signaling path): the
    // PPE writes the command word into each cooperating SPU's inbound
    // mailbox, the SPU consumes it, and returns the completion word through
    // the 1-deep outbound mailbox.  Exercises the architected depths.
    for (int w = 0; w < ways; ++w) {
      cell::Spu& spu = machine_->spe(base_spe + w);
      spu.inbox().write(static_cast<std::uint32_t>(kind));
      (void)spu.inbox().read();
      spu.outbox().write(1u);
      (void)spu.outbox().read();
    }
  }
  TraceSegment seg;
  seg.kind = kind;
  seg.ppe_cycles = ppe;
  seg.spe_cycles = spe;
  seg.dma_stall_cycles = dma_stall;
  seg.signal_cycles = signaled ? last_signal_cycles_ : 0.0;
  seg.llp_ways = static_cast<std::uint8_t>(ways);
  seg.signaled = signaled;
  segments_.push_back(seg);
  if (cell::EventSink* sink = cell::event_sink()) {
    if (signaled && cfg_.toggles.direct_comm) {
      // Direct-memory signaling (§5.2.6): the PPE stores the command word,
      // the SPE spins on it and stores completion, the PPE reads it back.
      for (int w = 0; w < ways; ++w) {
        const int id = machine_->spe(base_spe + w).event_id();
        sink->on_signal(id, cell::SignalOp::kGo);
        sink->on_signal(id, cell::SignalOp::kComplete);
        sink->on_signal(id, cell::SignalOp::kRead);
      }
    }
    // The PPE join: every record() closes one offloaded invocation, the
    // only cross-SPE happens-before edge the machine provides.
    sink->on_epoch();
  }
}

std::size_t SpeExecutor::strip_patterns(std::size_t pattern_bytes) const {
  // Strip length in patterns, floored to a multiple of 16 so every strip's
  // byte offset is 128-bit aligned for all element widths (tip codes are
  // 1 byte/pattern, the narrowest).
  return std::max<std::size_t>(16, cfg_.strip_bytes / pattern_bytes / 16 * 16);
}

template <class Body>
double SpeExecutor::run_chunks(std::size_t np, std::size_t pattern_bytes,
                               int ways, const Body& body,
                               cell::VCycles* stall_out) {
  // Chunk starts must be multiples of 16 patterns so every strip transfer
  // stays 128-bit aligned (DnaCode rows are byte-granular).
  const std::size_t quota =
      rxc::round_up((np + ways - 1) / static_cast<std::size_t>(ways), 16);
  const std::size_t strip = strip_patterns(pattern_bytes);

  // Ways that actually have patterns (trailing ways can be empty when the
  // quota rounding overshoots np).
  int active = 0;
  while (active < ways && static_cast<std::size_t>(active) * quota < np)
    ++active;

  // Each way's payload touches only its own Spu (clock, local store, MFC,
  // counters) and its own reduction slot, so the ways are free to run
  // concurrently; elapsed/stall land in per-way slots and the max reduction
  // below runs the same fixed-order comparisons as the sequential loop.
  std::array<double, cell::kMaxDeviceSpes> way_elapsed{};
  std::array<VCycles, cell::kMaxDeviceSpes> way_stall{};
  const auto run_way = [&](std::size_t wi) {
    const int w = static_cast<int>(wi);
    const std::size_t lo = static_cast<std::size_t>(w) * quota;
    const std::size_t n = std::min(quota, np - lo);
    cell::Spu& spu = machine_->spe(w);
    spu.mfc().set_contention(eib_factor_);
    const VCycles start = spu.now();
    const VCycles stall_before = spu.counters().dma_stall_cycles;
    body(spu, lo, n, strip);
    double elapsed = spu.now() - start;
    if (ways > 1) elapsed += machine_->params().llp_fork_join_cycles;
    way_elapsed[w] = elapsed;
    way_stall[w] = spu.counters().dma_stall_cycles - stall_before;
    spu.count_invocation();
  };
  if (active > 1 && host_threads_ > 1) {
    pool().parallel_for(static_cast<std::size_t>(active), run_way);
  } else {
    for (int w = 0; w < active; ++w) run_way(static_cast<std::size_t>(w));
  }

  double max_elapsed = 0.0;
  VCycles max_stall = 0.0;
  for (int w = 0; w < active; ++w) {
    if (way_elapsed[w] > max_elapsed) {
      max_elapsed = way_elapsed[w];
      max_stall = way_stall[w];
    }
  }
  if (stall_out != nullptr) *stall_out = max_stall;
  return max_elapsed;
}

// --- PPE cost estimates (original code path) ---------------------------------

double SpeExecutor::ppe_newview_cycles(const lh::NewviewTask& task) const {
  const auto& p = machine_->params();
  const double ncat = task.ctx.ncat;
  const double np = static_cast<double>(task.np);
  const double per_pattern =
      task.ctx.mode == lh::RateMode::kCat ? 1.0 : ncat;
  const double flops =
      2.0 * ncat * kPmatFlopsPerCategory +
      np * kNewviewFlopsPerPattern * per_pattern;
  return flops * p.ppe_dp_flop_cycles + 6.0 * ncat * p.ppe_exp_libm_cycles +
         np * p.ppe_cond_cycles + np * per_pattern * p.ppe_mem_cycles_per_pattern;
}

double SpeExecutor::ppe_evaluate_cycles(const lh::EvaluateTask& task) const {
  const auto& p = machine_->params();
  const double ncat = task.ctx.ncat;
  const double np = static_cast<double>(task.np);
  const double per_pattern =
      task.ctx.mode == lh::RateMode::kCat ? 1.0 : ncat;
  const double flops = ncat * kPmatFlopsPerCategory +
                       np * kEvaluateFlopsPerPattern * per_pattern;
  return flops * p.ppe_dp_flop_cycles + 3.0 * ncat * p.ppe_exp_libm_cycles +
         np * p.ppe_log_cycles + np * per_pattern * p.ppe_mem_cycles_per_pattern;
}

double SpeExecutor::ppe_sumtable_cycles(const lh::SumtableTask& task) const {
  const auto& p = machine_->params();
  const double np = static_cast<double>(task.np);
  const double per_pattern =
      task.ctx.mode == lh::RateMode::kCat ? 1.0 : task.ctx.ncat;
  return np * kSumtableFlopsPerPattern * per_pattern * p.ppe_dp_flop_cycles +
         np * per_pattern * p.ppe_mem_cycles_per_pattern;
}

double SpeExecutor::ppe_nr_cycles(const lh::NrTask& task) const {
  const auto& p = machine_->params();
  const double np = static_cast<double>(task.np);
  const double per_pattern =
      task.ctx.mode == lh::RateMode::kCat ? 1.0 : task.ctx.ncat;
  return 3.0 * task.ctx.ncat * p.ppe_exp_libm_cycles +
         np * kNrFlopsPerPattern * per_pattern * p.ppe_dp_flop_cycles +
         np * p.ppe_log_cycles +
         np * per_pattern * p.ppe_mem_cycles_per_pattern;
}

double SpeExecutor::ppe_edge_gradient_cycles(
    const lh::EdgeGradientTask& task) const {
  const auto& p = machine_->params();
  const double np = static_cast<double>(task.np);
  const double per_pattern =
      task.ctx.mode == lh::RateMode::kCat ? 1.0 : task.ctx.ncat;
  return 3.0 * task.ctx.ncat * p.ppe_exp_libm_cycles +
         np * kEdgeGradientFlopsPerPattern * per_pattern *
             p.ppe_dp_flop_cycles +
         np * p.ppe_log_cycles +
         np * per_pattern * p.ppe_mem_cycles_per_pattern;
}

// --- kernel dispatch ----------------------------------------------------------

void SpeExecutor::newview_payload(const lh::NewviewTask& task, cell::Spu& spu,
                                  std::size_t lo, std::size_t n,
                                  std::size_t strip,
                                  std::uint64_t* scale_events) {
  const auto& ctx = task.ctx;
  const auto& p = machine_->params();
  const int ncat = ctx.ncat;
  const bool cat_mode = ctx.mode == lh::RateMode::kCat;
  const std::size_t pp = (cat_mode ? 1u : static_cast<std::size_t>(ncat)) * 32;
  const lh::ExpFn exp_fn =
      cfg_.toggles.sdk_exp ? &lh::exp_sdk : &lh::exp_libm;
  const lh::ScalingCheck check = cfg_.toggles.int_cond
                                     ? lh::ScalingCheck::kIntCast
                                     : lh::ScalingCheck::kFloatBranch;
  {
    auto& ls = spu.ls();
    auto& mfc = spu.mfc();
    ls.reset();

        // Transition matrices: built in local store at invocation start
        // (the paper's "first loop" — where exp() lives).
        const std::size_t pm_bytes = static_cast<std::size_t>(ncat) * 128;
        const LsAddr pm1 = ls.alloc(pm_bytes);
        const LsAddr pm2 = ls.alloc(pm_bytes);
        lh::build_pmatrices(*ctx.es, ctx.rates, ncat, task.brlen1, exp_fn,
                            ls.as<double>(pm1, ncat * 16));
        lh::build_pmatrices(*ctx.es, ctx.rates, ncat, task.brlen2, exp_fn,
                            ls.as<double>(pm2, ncat * 16));
        spu.charge(6.0 * ncat * spe_exp_cycles() +
                   spe_flop_cycles(2.0 * ncat * kPmatFlopsPerCategory));

        const int nbuf = cfg_.toggles.double_buffer ? 2 : 1;
        struct Buffers {
          LsAddr in1, sc1, in2, sc2, cat, out, outsc;
        };
        Buffers buf[2];
        for (int b = 0; b < nbuf; ++b) {
          buf[b].in1 = task.tip1 ? ls.alloc(dma_bytes(strip, 1))
                                 : ls.alloc(strip * pp);
          buf[b].sc1 = task.partial1.scale ? ls.alloc(dma_bytes(strip, 4)) : 0;
          buf[b].in2 = task.tip2 ? ls.alloc(dma_bytes(strip, 1))
                                 : ls.alloc(strip * pp);
          buf[b].sc2 = task.partial2.scale ? ls.alloc(dma_bytes(strip, 4)) : 0;
          buf[b].cat = ctx.cat ? ls.alloc(dma_bytes(strip, 4)) : 0;
          buf[b].out = ls.alloc(strip * pp);
          buf[b].outsc = ls.alloc(dma_bytes(strip, 4));
        }

        const std::size_t nstrips = (n + strip - 1) / strip;
        const auto issue = [&](std::size_t s) {
          const std::size_t base = lo + s * strip;
          const std::size_t cnt = std::min(strip, lo + n - base);
          const Buffers& b = buf[s % nbuf];
          const int tag = static_cast<int>(s % nbuf);
          if (task.tip1) {
            mfc.get(b.in1, task.tip1.codes + base, dma_bytes(cnt, 1), tag,
                    spu.now());
          } else {
            const std::size_t stride_d = pp / 8;
            mfc.get(b.in1, task.partial1.values + base * stride_d, cnt * pp, tag,
                    spu.now());
            mfc.get(b.sc1, task.partial1.scale + base, dma_bytes(cnt, 4), tag,
                    spu.now());
          }
          if (task.tip2) {
            mfc.get(b.in2, task.tip2.codes + base, dma_bytes(cnt, 1), tag,
                    spu.now());
          } else {
            const std::size_t stride_d = pp / 8;
            mfc.get(b.in2, task.partial2.values + base * stride_d, cnt * pp, tag,
                    spu.now());
            mfc.get(b.sc2, task.partial2.scale + base, dma_bytes(cnt, 4), tag,
                    spu.now());
          }
          if (ctx.cat)
            mfc.get(b.cat, ctx.cat + base, dma_bytes(cnt, 4), tag, spu.now());
        };

        issue(0);
        for (std::size_t s = 0; s < nstrips; ++s) {
          if (cfg_.toggles.double_buffer) {
            // Overlap: bring in the next strip while computing this one.
            if (s + 1 < nstrips) issue(s + 1);
          } else if (s > 0) {
            issue(s);  // plain: fetch, then stall on the wait below
          }
          const int tag = static_cast<int>(s % nbuf);
          const int out_tag = 2 + static_cast<int>(s % nbuf);
          spu.wait_dma(tag);
          if (s >= static_cast<std::size_t>(nbuf))
            spu.wait_dma(out_tag);  // out buffer must have drained
          const VCycles w0 = spu.now();

          const std::size_t base = lo + s * strip;
          const std::size_t cnt = std::min(strip, lo + n - base);
          const Buffers& b = buf[s % nbuf];

          lh::NewviewArgs args;
          args.pmat1 = ls.as<const double>(pm1, ncat * 16);
          args.pmat2 = ls.as<const double>(pm2, ncat * 16);
          args.ncat = ncat;
          args.cat = ctx.cat ? ls.as<const int>(b.cat, cnt) : nullptr;
          args.np = cnt;
          args.tip1 =
              task.tip1 ? ls.as<const seq::DnaCode>(b.in1, cnt) : nullptr;
          args.partial1 =
              task.tip1 ? nullptr : ls.as<const double>(b.in1, cnt * pp / 8);
          args.scale1 =
              task.partial1.scale ? ls.as<const std::int32_t>(b.sc1, cnt) : nullptr;
          args.tip2 =
              task.tip2 ? ls.as<const seq::DnaCode>(b.in2, cnt) : nullptr;
          args.partial2 =
              task.tip2 ? nullptr : ls.as<const double>(b.in2, cnt * pp / 8);
          args.scale2 =
              task.partial2.scale ? ls.as<const std::int32_t>(b.sc2, cnt) : nullptr;
          args.out = ls.as<double>(b.out, cnt * pp / 8);
          args.scale_out = ls.as<std::int32_t>(b.outsc, cnt);
          args.scaling = check;

          std::uint64_t events;
          if (cat_mode) {
            events = cfg_.toggles.vectorized ? lh::newview_cat_simd(args)
                                             : lh::newview_cat(args);
          } else {
            events = cfg_.toggles.vectorized ? lh::newview_gamma_simd(args)
                                             : lh::newview_gamma(args);
          }
          *scale_events += events;

          const double per_pattern_cats =
              cat_mode ? 1.0 : static_cast<double>(ncat);
          double compute =
              spe_flop_cycles(kNewviewFlopsPerPattern * per_pattern_cats) +
              spe_cond_cycles() + p.spu_ls_cycles_per_pattern;
          if (cfg_.toggles.vectorized)
            compute += p.spu_vector_build_cycles * per_pattern_cats;
          spu.charge(compute * static_cast<double>(cnt) +
                     static_cast<double>(events) * 8.0 *
                         p.spu_dp_flop_cycles);

          // Declare this strip's local-store access windows to the armed
          // race detector (the kernels address LS through raw pointers, so
          // the executor reports the ranges on their behalf).
          if (cell::EventSink* sink = cell::event_sink()) {
            const int id = spu.event_id();
            const VCycles w1 = spu.now();
            sink->on_ls_read(id, b.in1,
                             task.tip1 ? dma_bytes(cnt, 1) : cnt * pp, w0, w1);
            if (task.partial1.scale)
              sink->on_ls_read(id, b.sc1, dma_bytes(cnt, 4), w0, w1);
            sink->on_ls_read(id, b.in2,
                             task.tip2 ? dma_bytes(cnt, 1) : cnt * pp, w0, w1);
            if (task.partial2.scale)
              sink->on_ls_read(id, b.sc2, dma_bytes(cnt, 4), w0, w1);
            if (ctx.cat)
              sink->on_ls_read(id, b.cat, dma_bytes(cnt, 4), w0, w1);
            sink->on_ls_write(id, b.out, cnt * pp, w0, w1);
            sink->on_ls_write(id, b.outsc, dma_bytes(cnt, 4), w0, w1);
          }

          const std::size_t stride_d = pp / 8;
          mfc.put(task.out + base * stride_d, b.out, cnt * pp, out_tag,
                  spu.now());
          mfc.put(task.scale_out + base, b.outsc, dma_bytes(cnt, 4), out_tag,
                  spu.now());
        }
        // Drain outstanding puts.
        spu.wait_dma(2);
        spu.wait_dma(3);
  }
}

void SpeExecutor::newview(const lh::NewviewTask& task) {
  task.validate();
  if (!cfg_.toggles.offload_newview) {
    ppe_exec_.newview(task);
    counters_ += ppe_exec_.counters();
    ppe_exec_.reset_counters();
    record(KernelKind::kNewview, ppe_newview_cycles(task), 0.0, 1, false);
    return;
  }

  const int ncat = task.ctx.ncat;
  const bool cat_mode = task.ctx.mode == lh::RateMode::kCat;
  const std::size_t pp = (cat_mode ? 1u : static_cast<std::size_t>(ncat)) * 32;
  // Per-way scale-event slots: ways may run concurrently, and the sum below
  // is order-insensitive (integer addition).
  std::array<std::uint64_t, cell::kMaxDeviceSpes> way_scale{};
  VCycles dma_stall = 0.0;

  const double spe = run_chunks(
      task.np, pp, cfg_.llp_ways,
      [&](cell::Spu& spu, std::size_t lo, std::size_t n, std::size_t strip) {
        newview_payload(task, spu, lo, n, strip, &way_scale[spu.id()]);
      },
      &dma_stall);

  std::uint64_t scale_events = 0;
  for (std::uint64_t s : way_scale) scale_events += s;
  counters_.scale_events += scale_events;
  ++counters_.newview_calls;
  counters_.newview_patterns += task.np;
  counters_.pmatrix_builds += 2 * cfg_.llp_ways;
  counters_.exp_calls += 6ull * ncat * cfg_.llp_ways;
  static obs::Counter& obs_calls = obs::counter("kernel.newview.calls");
  static obs::Counter& obs_patterns = obs::counter("kernel.newview.patterns");
  static obs::Counter& obs_exps = obs::counter("kernel.exp_calls");
  static obs::Counter& obs_scales = obs::counter("kernel.scale_events");
  obs_calls.add();
  obs_patterns.add(task.np);
  obs_exps.add(6ull * ncat * cfg_.llp_ways);
  obs_scales.add(scale_events);
  const double ppe_cost = offload_ppe_cycles(cfg_.llp_ways);
  record(KernelKind::kNewview, ppe_cost, spe, cfg_.llp_ways,
         last_offload_signaled_, dma_stall);
}

void SpeExecutor::newview_batch(const lh::NewviewTask* tasks,
                                std::size_t count) {
  // The batch path pays off only for offloaded single-way invocations that
  // can spread across idle SPEs; everything else already parallelizes
  // inside newview() (llp_ways > 1) or runs on the PPE.
  if (count <= 1 || host_threads_ <= 1 || cfg_.llp_ways != 1 ||
      !cfg_.toggles.offload_newview || machine_->spe_count() <= 1) {
    for (std::size_t i = 0; i < count; ++i) newview(tasks[i]);
    return;
  }
  for (std::size_t i = 0; i < count; ++i) tasks[i].validate();

  // Round-robin tasks across the machine's SPEs.  The sequential path runs
  // every ways==1 invocation on SPE 0, but per-invocation elapsed cycles
  // are independent of the hosting SPU: each payload starts from drained
  // MFC tag groups and measures spu.now() deltas only, and the golden
  // fingerprints sum DMA/stall counters across all SPEs.  Tasks that land
  // on the same lane run in task order, serially, on that lane's SPU.
  const int nspe = machine_->spe_count();
  struct TaskResult {
    double elapsed = 0.0;
    VCycles stall = 0.0;
    std::uint64_t scale_events = 0;
  };
  std::vector<TaskResult> results(count);
  const int lanes = std::min<int>(nspe, static_cast<int>(count));
  pool().parallel_for(
      static_cast<std::size_t>(lanes), [&](std::size_t lane) {
        for (std::size_t i = lane; i < count; i += static_cast<std::size_t>(nspe)) {
          const lh::NewviewTask& task = tasks[i];
          const bool cat = task.ctx.mode == lh::RateMode::kCat;
          const std::size_t pp =
              (cat ? 1u : static_cast<std::size_t>(task.ctx.ncat)) * 32;
          cell::Spu& spu = machine_->spe(static_cast<int>(lane));
          spu.mfc().set_contention(eib_factor_);
          const VCycles start = spu.now();
          const VCycles stall_before = spu.counters().dma_stall_cycles;
          newview_payload(task, spu, 0, task.np, strip_patterns(pp),
                          &results[i].scale_events);
          results[i].elapsed = spu.now() - start;
          results[i].stall = spu.counters().dma_stall_cycles - stall_before;
          spu.count_invocation();
        }
      });

  // Trace/obs/accounting in original task order — the segment stream (and
  // the epoch stream the race detector sees) is identical to the serial
  // loop's.
  for (std::size_t i = 0; i < count; ++i) {
    const int ncat = tasks[i].ctx.ncat;
    counters_.scale_events += results[i].scale_events;
    ++counters_.newview_calls;
    counters_.newview_patterns += tasks[i].np;
    counters_.pmatrix_builds += 2;
    counters_.exp_calls += 6ull * ncat;
    static obs::Counter& obs_calls = obs::counter("kernel.newview.calls");
    static obs::Counter& obs_patterns =
        obs::counter("kernel.newview.patterns");
    static obs::Counter& obs_exps = obs::counter("kernel.exp_calls");
    static obs::Counter& obs_scales = obs::counter("kernel.scale_events");
    obs_calls.add();
    obs_patterns.add(tasks[i].np);
    obs_exps.add(6ull * ncat);
    obs_scales.add(results[i].scale_events);
    const double ppe_cost = offload_ppe_cycles(1);
    record(KernelKind::kNewview, ppe_cost, results[i].elapsed, 1,
           last_offload_signaled_, results[i].stall,
           static_cast<int>(i) % nspe);
  }
}

double SpeExecutor::evaluate(const lh::EvaluateTask& task) {
  task.validate();
  if (!cfg_.toggles.offload_rest) {
    const double result = ppe_exec_.evaluate(task);
    counters_ += ppe_exec_.counters();
    ppe_exec_.reset_counters();
    record(KernelKind::kEvaluate, ppe_evaluate_cycles(task), 0.0, 1, false);
    return result;
  }

  const auto& ctx = task.ctx;
  const auto& p = machine_->params();
  const int ncat = ctx.ncat;
  const bool cat_mode = ctx.mode == lh::RateMode::kCat;
  const std::size_t pp = (cat_mode ? 1u : static_cast<std::size_t>(ncat)) * 32;
  const lh::ExpFn exp_fn =
      cfg_.toggles.sdk_exp ? &lh::exp_sdk : &lh::exp_libm;
  double lnl = 0.0;
  VCycles dma_stall = 0.0;

  // evaluate() is light; the port never loop-parallelizes it (ways = 1).
  const double spe = run_chunks(
      task.np, pp, 1,
      [&](cell::Spu& spu, std::size_t lo, std::size_t n, std::size_t strip) {
        auto& ls = spu.ls();
        auto& mfc = spu.mfc();
        ls.reset();
        const std::size_t pm_bytes = static_cast<std::size_t>(ncat) * 128;
        const LsAddr pm = ls.alloc(pm_bytes);
        lh::build_pmatrices(*ctx.es, ctx.rates, ncat, task.brlen, exp_fn,
                            ls.as<double>(pm, ncat * 16));
        spu.charge(3.0 * ncat * spe_exp_cycles() +
                   spe_flop_cycles(ncat * kPmatFlopsPerCategory));

        const LsAddr in1 = task.tip1 ? ls.alloc(dma_bytes(strip, 1))
                                     : ls.alloc(strip * pp);
        const LsAddr sc1 = task.partial1.scale ? ls.alloc(dma_bytes(strip, 4)) : 0;
        const LsAddr in2 = ls.alloc(strip * pp);
        const LsAddr sc2 = task.partial2.scale ? ls.alloc(dma_bytes(strip, 4)) : 0;
        const LsAddr wts = ls.alloc(dma_bytes(strip, 8));
        const LsAddr catb = ctx.cat ? ls.alloc(dma_bytes(strip, 4)) : 0;
        const LsAddr site =
            task.site_lnl_out ? ls.alloc(dma_bytes(strip, 8)) : 0;

        const std::size_t nstrips = (n + strip - 1) / strip;
        for (std::size_t s = 0; s < nstrips; ++s) {
          const std::size_t base = lo + s * strip;
          const std::size_t cnt = std::min(strip, lo + n - base);
          const std::size_t stride_d = pp / 8;
          if (task.tip1) {
            mfc.get(in1, task.tip1.codes + base, dma_bytes(cnt, 1), 0, spu.now());
          } else {
            mfc.get(in1, task.partial1.values + base * stride_d, cnt * pp, 0,
                    spu.now());
            mfc.get(sc1, task.partial1.scale + base, dma_bytes(cnt, 4), 0, spu.now());
          }
          mfc.get(in2, task.partial2.values + base * stride_d, cnt * pp, 0,
                  spu.now());
          if (task.partial2.scale)
            mfc.get(sc2, task.partial2.scale + base, dma_bytes(cnt, 4), 0, spu.now());
          mfc.get(wts, task.weights + base, dma_bytes(cnt, 8), 0, spu.now());
          if (ctx.cat)
            mfc.get(catb, ctx.cat + base, dma_bytes(cnt, 4), 0, spu.now());
          spu.wait_dma(0);
          // The site buffer is rewritten below; the previous strip's put
          // must have drained first.  Never stalls: the tag-0 group above
          // moves strictly more bytes, so it always completes later.
          if (task.site_lnl_out && s > 0) spu.wait_dma(1);
          const VCycles w0 = spu.now();

          lh::EvaluateArgs args;
          args.pmat = ls.as<const double>(pm, ncat * 16);
          args.freqs = ctx.es->freqs.data();
          args.ncat = ncat;
          args.cat = ctx.cat ? ls.as<const int>(catb, cnt) : nullptr;
          args.np = cnt;
          args.tip1 =
              task.tip1 ? ls.as<const seq::DnaCode>(in1, cnt) : nullptr;
          args.partial1 =
              task.tip1 ? nullptr : ls.as<const double>(in1, cnt * pp / 8);
          args.scale1 =
              task.partial1.scale ? ls.as<const std::int32_t>(sc1, cnt) : nullptr;
          args.partial2 = ls.as<const double>(in2, cnt * pp / 8);
          args.scale2 =
              task.partial2.scale ? ls.as<const std::int32_t>(sc2, cnt) : nullptr;
          args.weights = ls.as<const double>(wts, cnt);
          args.site_lnl_out =
              task.site_lnl_out ? ls.as<double>(site, cnt) : nullptr;

          if (cfg_.toggles.vectorized) {
            lnl += cat_mode ? lh::evaluate_cat_simd(args)
                            : lh::evaluate_gamma_simd(args);
          } else {
            lnl += cat_mode ? lh::evaluate_cat(args)
                            : lh::evaluate_gamma(args);
          }

          const double per_pattern_cats =
              cat_mode ? 1.0 : static_cast<double>(ncat);
          spu.charge((spe_flop_cycles(kEvaluateFlopsPerPattern *
                                      per_pattern_cats) +
                      spe_log_cycles() + p.spu_ls_cycles_per_pattern) *
                     static_cast<double>(cnt));

          if (cell::EventSink* sink = cell::event_sink()) {
            const int id = spu.event_id();
            const VCycles w1 = spu.now();
            sink->on_ls_read(id, in1,
                             task.tip1 ? dma_bytes(cnt, 1) : cnt * pp, w0, w1);
            if (task.partial1.scale)
              sink->on_ls_read(id, sc1, dma_bytes(cnt, 4), w0, w1);
            sink->on_ls_read(id, in2, cnt * pp, w0, w1);
            if (task.partial2.scale)
              sink->on_ls_read(id, sc2, dma_bytes(cnt, 4), w0, w1);
            sink->on_ls_read(id, wts, dma_bytes(cnt, 8), w0, w1);
            if (ctx.cat) sink->on_ls_read(id, catb, dma_bytes(cnt, 4), w0, w1);
            if (task.site_lnl_out)
              sink->on_ls_write(id, site, dma_bytes(cnt, 8), w0, w1);
          }

          if (task.site_lnl_out) {
            mfc.put(task.site_lnl_out + base, site, dma_bytes(cnt, 8), 1,
                    spu.now());
          }
        }
        spu.wait_dma(1);
      },
      &dma_stall);

  ++counters_.evaluate_calls;
  ++counters_.pmatrix_builds;
  counters_.exp_calls += 3ull * ncat;
  static obs::Counter& obs_calls = obs::counter("kernel.evaluate.calls");
  static obs::Counter& obs_exps = obs::counter("kernel.exp_calls");
  obs_calls.add();
  obs_exps.add(3ull * ncat);
  const double ppe_cost = offload_ppe_cycles(1);
  record(KernelKind::kEvaluate, ppe_cost, spe, 1, last_offload_signaled_,
         dma_stall);
  return lnl;
}

void SpeExecutor::sumtable(const lh::SumtableTask& task) {
  task.validate();
  if (!cfg_.toggles.offload_rest) {
    ppe_exec_.sumtable(task);
    counters_ += ppe_exec_.counters();
    ppe_exec_.reset_counters();
    record(KernelKind::kSumtable, ppe_sumtable_cycles(task), 0.0, 1, false);
    return;
  }

  const auto& ctx = task.ctx;
  const auto& p = machine_->params();
  const int ncat = ctx.ncat;
  const bool cat_mode = ctx.mode == lh::RateMode::kCat;
  const std::size_t pp = (cat_mode ? 1u : static_cast<std::size_t>(ncat)) * 32;
  VCycles dma_stall = 0.0;

  const double spe = run_chunks(
      task.np, pp, 1,
      [&](cell::Spu& spu, std::size_t lo, std::size_t n, std::size_t strip) {
        auto& ls = spu.ls();
        auto& mfc = spu.mfc();
        ls.reset();
        const LsAddr in1 = task.tip1 ? ls.alloc(dma_bytes(strip, 1))
                                     : ls.alloc(strip * pp);
        const LsAddr in2 = ls.alloc(strip * pp);
        const LsAddr out = ls.alloc(strip * pp);

        const std::size_t nstrips = (n + strip - 1) / strip;
        for (std::size_t s = 0; s < nstrips; ++s) {
          const std::size_t base = lo + s * strip;
          const std::size_t cnt = std::min(strip, lo + n - base);
          const std::size_t stride_d = pp / 8;
          if (task.tip1) {
            mfc.get(in1, task.tip1.codes + base, dma_bytes(cnt, 1), 0, spu.now());
          } else {
            mfc.get(in1, task.partial1.values + base * stride_d, cnt * pp, 0,
                    spu.now());
          }
          mfc.get(in2, task.partial2.values + base * stride_d, cnt * pp, 0,
                  spu.now());
          spu.wait_dma(0);
          // The out buffer is rewritten below; the previous strip's put must
          // have drained first.  Never stalls: the tag-0 group above moves
          // strictly more bytes, so it always completes later.
          if (s > 0) spu.wait_dma(1);
          const VCycles w0 = spu.now();

          lh::SumtableArgs args;
          args.es = ctx.es;
          args.ncat = ncat;
          args.np = cnt;
          args.tip1 =
              task.tip1 ? ls.as<const seq::DnaCode>(in1, cnt) : nullptr;
          args.partial1 =
              task.tip1 ? nullptr : ls.as<const double>(in1, cnt * pp / 8);
          args.partial2 = ls.as<const double>(in2, cnt * pp / 8);
          args.out = ls.as<double>(out, cnt * pp / 8);
          if (cfg_.toggles.vectorized) {
            cat_mode ? lh::make_sumtable_cat_simd(args)
                     : lh::make_sumtable_gamma_simd(args);
          } else {
            cat_mode ? lh::make_sumtable_cat(args)
                     : lh::make_sumtable_gamma(args);
          }
          const double per_pattern_cats =
              cat_mode ? 1.0 : static_cast<double>(ncat);
          spu.charge((spe_flop_cycles(kSumtableFlopsPerPattern *
                                      per_pattern_cats) +
                      p.spu_ls_cycles_per_pattern) *
                     static_cast<double>(cnt));
          if (cell::EventSink* sink = cell::event_sink()) {
            const int id = spu.event_id();
            const VCycles w1 = spu.now();
            sink->on_ls_read(id, in1,
                             task.tip1 ? dma_bytes(cnt, 1) : cnt * pp, w0, w1);
            sink->on_ls_read(id, in2, cnt * pp, w0, w1);
            sink->on_ls_write(id, out, cnt * pp, w0, w1);
          }
          mfc.put(task.out + base * stride_d, out, cnt * pp, 1, spu.now());
        }
        spu.wait_dma(1);
      },
      &dma_stall);

  ++counters_.sumtable_calls;
  static obs::Counter& obs_calls = obs::counter("kernel.sumtable.calls");
  obs_calls.add();
  // If the whole sumtable (plus weights and categories) fits in the local
  // store, the offloaded makenewz keeps it there across Newton iterations.
  const std::size_t resident_bytes =
      task.np * pp + dma_bytes(task.np, 8) + dma_bytes(task.np, 4);
  sumtable_resident_ =
      in_compound_ &&
      resident_bytes + 4096 < machine_->device().ls_data_bytes();
  const double ppe_cost = offload_ppe_cycles(1);
  record(KernelKind::kSumtable, ppe_cost, spe, 1, last_offload_signaled_,
         dma_stall);
}

lh::NrResult SpeExecutor::nr_derivatives(const lh::NrTask& task) {
  task.validate();
  if (!cfg_.toggles.offload_rest) {
    const lh::NrResult result = ppe_exec_.nr_derivatives(task);
    counters_ += ppe_exec_.counters();
    ppe_exec_.reset_counters();
    record(KernelKind::kNrDerivatives, ppe_nr_cycles(task), 0.0, 1, false);
    return result;
  }

  const auto& ctx = task.ctx;
  const auto& p = machine_->params();
  const int ncat = ctx.ncat;
  const bool cat_mode = ctx.mode == lh::RateMode::kCat;
  const std::size_t pp = (cat_mode ? 1u : static_cast<std::size_t>(ncat)) * 32;
  const lh::ExpFn exp_fn =
      cfg_.toggles.sdk_exp ? &lh::exp_sdk : &lh::exp_libm;
  lh::NrResult total;
  VCycles dma_stall = 0.0;

  if (sumtable_resident_) {
    // Sumtable, weights and categories are already in local store from the
    // sumtable step: the iteration is pure SPU compute.  Values are
    // identical whichever buffer the kernel reads, so compute from the
    // main-memory mirror.
    lh::NrArgs args;
    args.sumtable = task.sumtable;
    args.lambda = ctx.es->lambda.data();
    args.rates = ctx.rates;
    args.ncat = ncat;
    args.cat = ctx.cat;
    args.np = task.np;
    args.weights = task.weights;
    args.t = task.t;
    args.exp_fn = exp_fn;
    total = cat_mode ? lh::nr_derivatives_cat(args)
                     : lh::nr_derivatives_gamma(args);
    const double per_pattern_cats = cat_mode ? 1.0 : static_cast<double>(ncat);
    cell::Spu& spu = machine_->spe(0);
    const cell::VCycles start = spu.now();
    spu.charge(3.0 * ncat * spe_exp_cycles() +
               (spe_flop_cycles(kNrFlopsPerPattern * per_pattern_cats) +
                spe_log_cycles() + p.spu_ls_cycles_per_pattern) *
                   static_cast<double>(task.np));
    ++counters_.nr_calls;
    counters_.exp_calls += 3ull * ncat;
    static obs::Counter& obs_res_calls = obs::counter("kernel.nr.calls");
    static obs::Counter& obs_res_exps = obs::counter("kernel.exp_calls");
    obs_res_calls.add();
    obs_res_exps.add(3ull * ncat);
    const double resident_ppe = offload_ppe_cycles(1);
    record(KernelKind::kNrDerivatives, resident_ppe, spu.now() - start, 1,
           last_offload_signaled_);
    return total;
  }

  const double spe = run_chunks(
      task.np, pp, 1,
      [&](cell::Spu& spu, std::size_t lo, std::size_t n, std::size_t strip) {
        auto& ls = spu.ls();
        auto& mfc = spu.mfc();
        ls.reset();
        const LsAddr st = ls.alloc(strip * pp);
        const LsAddr wts = ls.alloc(dma_bytes(strip, 8));
        const LsAddr catb = ctx.cat ? ls.alloc(dma_bytes(strip, 4)) : 0;

        // The exponent table is computed once per invocation on silicon;
        // charge it once.
        spu.charge(3.0 * ncat * spe_exp_cycles());

        const std::size_t nstrips = (n + strip - 1) / strip;
        for (std::size_t s = 0; s < nstrips; ++s) {
          const std::size_t base = lo + s * strip;
          const std::size_t cnt = std::min(strip, lo + n - base);
          const std::size_t stride_d = pp / 8;
          mfc.get(st, task.sumtable + base * stride_d, cnt * pp, 0,
                  spu.now());
          mfc.get(wts, task.weights + base, dma_bytes(cnt, 8), 0, spu.now());
          if (ctx.cat)
            mfc.get(catb, ctx.cat + base, dma_bytes(cnt, 4), 0, spu.now());
          spu.wait_dma(0);
          const VCycles w0 = spu.now();

          const double per_pattern_cats =
              cat_mode ? 1.0 : static_cast<double>(ncat);
          spu.charge(
              (spe_flop_cycles(kNrFlopsPerPattern * per_pattern_cats) +
               spe_log_cycles() + p.spu_ls_cycles_per_pattern) *
              static_cast<double>(cnt));
          if (cell::EventSink* sink = cell::event_sink()) {
            const int id = spu.event_id();
            const VCycles w1 = spu.now();
            sink->on_ls_read(id, st, cnt * pp, w0, w1);
            sink->on_ls_read(id, wts, dma_bytes(cnt, 8), w0, w1);
            if (ctx.cat) sink->on_ls_read(id, catb, dma_bytes(cnt, 4), w0, w1);
          }
        }
      },
      &dma_stall);

  // The functional result is computed once over the WHOLE range from the
  // main-memory mirror.  The per-strip LS reads hold the same values, but a
  // strip-by-strip reduction would tie the summation order to strip count
  // and to residency — and residency follows ls_data_bytes(), a geometry
  // knob.  Device models must be performance models only (the rxc-sweep
  // lnl_identical contract), so the reduction order is fixed here and the
  // strip loop above models DMA traffic and SPU cycles exclusively.
  {
    lh::NrArgs args;
    args.sumtable = task.sumtable;
    args.lambda = ctx.es->lambda.data();
    args.rates = ctx.rates;
    args.ncat = ncat;
    args.cat = ctx.cat;
    args.np = task.np;
    args.weights = task.weights;
    args.t = task.t;
    args.exp_fn = exp_fn;
    total = cat_mode ? lh::nr_derivatives_cat(args)
                     : lh::nr_derivatives_gamma(args);
  }

  ++counters_.nr_calls;
  counters_.exp_calls += 3ull * ncat;
  static obs::Counter& obs_calls = obs::counter("kernel.nr.calls");
  static obs::Counter& obs_exps = obs::counter("kernel.exp_calls");
  obs_calls.add();
  obs_exps.add(3ull * ncat);
  const double ppe_cost = offload_ppe_cycles(1);
  record(KernelKind::kNrDerivatives, ppe_cost, spe, 1,
         last_offload_signaled_, dma_stall);
  return total;
}

lh::NrResult SpeExecutor::edge_gradient_mirror(
    const lh::EdgeGradientTask& task) const {
  const auto& ctx = task.ctx;
  lh::EdgeGradientArgs args;
  args.es = ctx.es;
  args.rates = ctx.rates;
  args.ncat = ctx.ncat;
  args.cat = ctx.cat;
  args.np = task.np;
  args.tip1 = task.tip1.codes;
  args.partial1 = task.partial1.values;
  args.partial2 = task.partial2.values;
  args.weights = task.weights;
  args.t = task.t;
  args.exp_fn = cfg_.toggles.sdk_exp ? &lh::exp_sdk : &lh::exp_libm;
  const bool cat_mode = ctx.mode == lh::RateMode::kCat;
  if (cfg_.toggles.vectorized) {
    return cat_mode ? lh::edge_gradient_cat_simd(args)
                    : lh::edge_gradient_gamma_simd(args);
  }
  return cat_mode ? lh::edge_gradient_cat(args)
                  : lh::edge_gradient_gamma(args);
}

void SpeExecutor::edge_gradient_payload(const lh::EdgeGradientTask& task,
                                        cell::Spu& spu, std::size_t lo,
                                        std::size_t n, std::size_t strip) {
  const auto& ctx = task.ctx;
  const auto& p = machine_->params();
  const int ncat = ctx.ncat;
  const bool cat_mode = ctx.mode == lh::RateMode::kCat;
  const std::size_t pp = (cat_mode ? 1u : static_cast<std::size_t>(ncat)) * 32;

  auto& ls = spu.ls();
  auto& mfc = spu.mfc();
  ls.reset();
  const LsAddr in1 = task.tip1 ? ls.alloc(dma_bytes(strip, 1))
                               : ls.alloc(strip * pp);
  const LsAddr in2 = ls.alloc(strip * pp);
  const LsAddr wts = ls.alloc(dma_bytes(strip, 8));
  const LsAddr catb = ctx.cat ? ls.alloc(dma_bytes(strip, 4)) : 0;

  // The exponent table is computed once per invocation on silicon.
  spu.charge(3.0 * ncat * spe_exp_cycles());

  const std::size_t nstrips = (n + strip - 1) / strip;
  for (std::size_t s = 0; s < nstrips; ++s) {
    const std::size_t base = lo + s * strip;
    const std::size_t cnt = std::min(strip, lo + n - base);
    const std::size_t stride_d = pp / 8;
    if (task.tip1) {
      mfc.get(in1, task.tip1.codes + base, dma_bytes(cnt, 1), 0, spu.now());
    } else {
      mfc.get(in1, task.partial1.values + base * stride_d, cnt * pp, 0,
              spu.now());
    }
    mfc.get(in2, task.partial2.values + base * stride_d, cnt * pp, 0,
            spu.now());
    mfc.get(wts, task.weights + base, dma_bytes(cnt, 8), 0, spu.now());
    if (ctx.cat)
      mfc.get(catb, ctx.cat + base, dma_bytes(cnt, 4), 0, spu.now());
    spu.wait_dma(0);
    const VCycles w0 = spu.now();

    // The sumtable slots live in registers and the derivative reduction
    // stays SPE-resident, so nothing is put back to main memory — only the
    // three reduced doubles travel with the completion signal.
    const double per_pattern_cats = cat_mode ? 1.0 : static_cast<double>(ncat);
    spu.charge(
        (spe_flop_cycles(kEdgeGradientFlopsPerPattern * per_pattern_cats) +
         spe_log_cycles() + p.spu_ls_cycles_per_pattern) *
        static_cast<double>(cnt));
    if (cell::EventSink* sink = cell::event_sink()) {
      const int id = spu.event_id();
      const VCycles w1 = spu.now();
      sink->on_ls_read(id, in1, task.tip1 ? dma_bytes(cnt, 1) : cnt * pp, w0,
                       w1);
      sink->on_ls_read(id, in2, cnt * pp, w0, w1);
      sink->on_ls_read(id, wts, dma_bytes(cnt, 8), w0, w1);
      if (ctx.cat) sink->on_ls_read(id, catb, dma_bytes(cnt, 4), w0, w1);
    }
  }
}

lh::NrResult SpeExecutor::edge_gradient(const lh::EdgeGradientTask& task) {
  task.validate();
  if (!cfg_.toggles.offload_rest) {
    const lh::NrResult result = ppe_exec_.edge_gradient(task);
    counters_ += ppe_exec_.counters();
    ppe_exec_.reset_counters();
    record(KernelKind::kEdgeGradient, ppe_edge_gradient_cycles(task), 0.0, 1,
           false);
    return result;
  }

  const auto& ctx = task.ctx;
  const int ncat = ctx.ncat;
  const bool cat_mode = ctx.mode == lh::RateMode::kCat;
  const std::size_t pp = (cat_mode ? 1u : static_cast<std::size_t>(ncat)) * 32;
  VCycles dma_stall = 0.0;

  const double spe = run_chunks(
      task.np, pp, 1,
      [&](cell::Spu& spu, std::size_t lo, std::size_t n, std::size_t strip) {
        edge_gradient_payload(task, spu, lo, n, strip);
      },
      &dma_stall);

  // Functional result: whole-range from the main-memory mirror (the same
  // fixed reduction order for every strip count and device geometry — the
  // rxc-sweep lnl_identical contract).
  const lh::NrResult total = edge_gradient_mirror(task);

  ++counters_.edge_gradient_calls;
  counters_.exp_calls += 3ull * ncat;
  static obs::Counter& obs_calls = obs::counter("kernel.edge_gradient.calls");
  static obs::Counter& obs_exps = obs::counter("kernel.exp_calls");
  obs_calls.add();
  obs_exps.add(3ull * ncat);
  const double ppe_cost = offload_ppe_cycles(1);
  record(KernelKind::kEdgeGradient, ppe_cost, spe, 1, last_offload_signaled_,
         dma_stall);
  return total;
}

void SpeExecutor::edge_gradient_batch(const lh::EdgeGradientTask* tasks,
                                      std::size_t count,
                                      lh::NrResult* results) {
  // Same gating as newview_batch: the batch path pays off only for
  // offloaded invocations that can spread over idle SPEs.
  if (count <= 1 || host_threads_ <= 1 || cfg_.llp_ways != 1 ||
      !cfg_.toggles.offload_rest || machine_->spe_count() <= 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = edge_gradient(tasks[i]);
    return;
  }
  for (std::size_t i = 0; i < count; ++i) tasks[i].validate();

  const int nspe = machine_->spe_count();
  struct TaskResult {
    double elapsed = 0.0;
    VCycles stall = 0.0;
  };
  std::vector<TaskResult> timings(count);
  const int lanes = std::min<int>(nspe, static_cast<int>(count));
  pool().parallel_for(
      static_cast<std::size_t>(lanes), [&](std::size_t lane) {
        for (std::size_t i = lane; i < count;
             i += static_cast<std::size_t>(nspe)) {
          const lh::EdgeGradientTask& task = tasks[i];
          const bool cat = task.ctx.mode == lh::RateMode::kCat;
          const std::size_t pp =
              (cat ? 1u : static_cast<std::size_t>(task.ctx.ncat)) * 32;
          cell::Spu& spu = machine_->spe(static_cast<int>(lane));
          spu.mfc().set_contention(eib_factor_);
          const VCycles start = spu.now();
          const VCycles stall_before = spu.counters().dma_stall_cycles;
          edge_gradient_payload(task, spu, 0, task.np, strip_patterns(pp));
          timings[i].elapsed = spu.now() - start;
          timings[i].stall = spu.counters().dma_stall_cycles - stall_before;
          results[i] = edge_gradient_mirror(task);
          spu.count_invocation();
        }
      });

  // Trace/obs/accounting in original task order, exactly like the serial
  // loop would have produced them.
  for (std::size_t i = 0; i < count; ++i) {
    const int ncat = tasks[i].ctx.ncat;
    ++counters_.edge_gradient_calls;
    counters_.exp_calls += 3ull * ncat;
    static obs::Counter& obs_calls =
        obs::counter("kernel.edge_gradient.calls");
    static obs::Counter& obs_exps = obs::counter("kernel.exp_calls");
    obs_calls.add();
    obs_exps.add(3ull * ncat);
    const double ppe_cost = offload_ppe_cycles(1);
    record(KernelKind::kEdgeGradient, ppe_cost, timings[i].elapsed, 1,
           last_offload_signaled_, timings[i].stall,
           static_cast<int>(i) % nspe);
  }
}

// --- CellExecutor: machine-owning wrapper + factory registration -------------

CellExecutor::CellExecutor(SpeExecConfig config, cell::DeviceModel device)
    : machine_(std::move(device), config.event_base), exec_(machine_, config) {}

void CellExecutor::newview(const lh::NewviewTask& task) {
  exec_.newview(task);
  sync_counters();
}

void CellExecutor::newview_batch(const lh::NewviewTask* tasks,
                                 std::size_t count) {
  exec_.newview_batch(tasks, count);
  sync_counters();
}

double CellExecutor::evaluate(const lh::EvaluateTask& task) {
  const double result = exec_.evaluate(task);
  sync_counters();
  return result;
}

void CellExecutor::sumtable(const lh::SumtableTask& task) {
  exec_.sumtable(task);
  sync_counters();
}

lh::NrResult CellExecutor::nr_derivatives(const lh::NrTask& task) {
  const lh::NrResult result = exec_.nr_derivatives(task);
  sync_counters();
  return result;
}

lh::NrResult CellExecutor::edge_gradient(const lh::EdgeGradientTask& task) {
  const lh::NrResult result = exec_.edge_gradient(task);
  sync_counters();
  return result;
}

void CellExecutor::edge_gradient_batch(const lh::EdgeGradientTask* tasks,
                                       std::size_t count,
                                       lh::NrResult* results) {
  exec_.edge_gradient_batch(tasks, count, results);
  sync_counters();
}

void CellExecutor::begin_compound() { exec_.begin_compound(); }
void CellExecutor::end_compound() { exec_.end_compound(); }

void CellExecutor::reset_counters() {
  exec_.reset_counters();
  counters_ = {};
}

void CellExecutor::begin_task() {
  exec_.begin_task();
  counters_ = {};
}

TaskTrace CellExecutor::take_trace() { return exec_.take_trace(); }

namespace {

std::unique_ptr<lh::KernelExecutor> make_cell_executor(
    const lh::ExecutorSpec& spec) {
  const lh::CellOptions& opts = spec.cell();
  SpeExecConfig cfg;
  cfg.toggles = stage_toggles(static_cast<Stage>(opts.stage));
  cfg.llp_ways = opts.llp_ways;
  cfg.strip_bytes = opts.strip_bytes;
  cfg.host_threads = opts.host_threads;
  cfg.event_base = opts.unique_events ? cell::reserve_spu_event_base() : 0;
  return std::make_unique<CellExecutor>(cfg, opts.device);
}

/// Registers the Cell backend with lh::make_executor at static-init time.
/// Lives in this TU so any binary that references the executor (directly or
/// through cell_executor_spec) links the registrar in.
const bool g_cell_factory_registered = [] {
  lh::register_executor_factory(lh::ExecutorKind::kSpe, &make_cell_executor);
  return true;
}();

}  // namespace

lh::ExecutorSpec cell_executor_spec(Stage stage, int llp_ways) {
  (void)g_cell_factory_registered;
  lh::CellOptions opts;
  opts.stage = static_cast<int>(stage);
  opts.llp_ways = llp_ways;
  return lh::ExecutorSpec::cell_spec(std::move(opts));
}

CellExecutor& as_cell_executor(lh::KernelExecutor& exec) {
  auto* cell = dynamic_cast<CellExecutor*>(&exec);
  RXC_REQUIRE(cell != nullptr,
              "executor is not the Cell backend (build it with "
              "make_executor(cell_executor_spec(...)))");
  return *cell;
}

}  // namespace rxc::core
