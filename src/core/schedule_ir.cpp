/// \file schedule_ir.cpp
/// extract_program / extract_batch_program: the SPE executor's offload
/// orchestration re-emitted as a side-effect-free cell::Program.  Every
/// sequence here mirrors spe_executor.cpp op-for-op — same strip mining
/// (strip_patterns / run_chunks quotas), same local-store layout and
/// watermark, same DMA tag discipline and drain order, same kernel access
/// windows, same mailbox/direct-signal record() protocol, same compound
/// chaining and sumtable-residency rule.  tests/test_static_verifier.cpp
/// pins the mirror with an event-stream parity check against the live
/// executor; change one side and that test says where the other drifted.

#include <algorithm>

#include "core/scheduler.h"
#include "core/trace.h"
#include "support/aligned.h"
#include "support/error.h"

namespace rxc::core {
namespace {

/// DMA-legal byte count for a strip of `n` elements of `size` bytes
/// (spe_executor.cpp's dma_bytes).
constexpr std::uint64_t dma_len(std::uint64_t n, std::uint64_t size) {
  return rxc::round_up(n * size, 16);
}

/// Mirrors cell::LocalStore's watermark allocator: 16-aligned bump starting
/// at the code image.
struct LsAlloc {
  std::uint64_t base = 0;
  std::uint64_t top = 0;

  explicit LsAlloc(std::uint64_t code_bytes)
      : base(rxc::round_up(code_bytes, 16)), top(base) {}
  std::uint64_t alloc(std::uint64_t bytes) {
    const std::uint64_t at = top;
    top += rxc::round_up(bytes, 16);
    return at;
  }
};

/// Synthetic main-memory arena: every logical buffer gets a disjoint
/// 16-aligned region, so overlap in the emitted program means overlap in
/// the real executor's host buffers, not an artifact of the encoding.
struct EaArena {
  std::uint64_t top = 0;
  std::uint64_t alloc(std::uint64_t bytes) {
    const std::uint64_t at = top;
    top += rxc::round_up(bytes, 16);
    return at;
  }
};

/// One kernel operand: a tip-code column (1 byte/pattern, no scale) or a
/// partial-likelihood vector (pp bytes/pattern + an int32 scale column).
struct Operand {
  bool tip = false;
  std::uint64_t values = 0;  ///< codes region (tip) or values region
  std::uint64_t scale = 0;   ///< int32 scale column (partials only)
};

class Extractor {
 public:
  Extractor(const cell::DeviceModel& device, Stage stage, int llp_ways,
            const ProgramShape& shape, std::size_t strip_bytes)
      : device_(device),
        toggles_(stage_toggles(stage)),
        ways_(llp_ways),
        shape_(shape),
        strip_bytes_(strip_bytes) {
    device_.validate();
    RXC_REQUIRE(ways_ >= 1 && ways_ <= device_.spe_count,
                "llp_ways out of range");
    RXC_REQUIRE(shape_.patterns >= 1, "shape.patterns must be >= 1");
    RXC_REQUIRE(shape_.categories >= 1, "shape.categories must be >= 1");
    RXC_REQUIRE(shape_.newton_iters >= 0, "shape.newton_iters must be >= 0");
    RXC_REQUIRE(shape_.gradient_edges >= 0,
                "shape.gradient_edges must be >= 0");
    RXC_REQUIRE(strip_bytes_ >= 256, "strip buffer too small");
    np_ = shape_.patterns;
    ncat_ = static_cast<std::uint64_t>(shape_.categories);
    pp_ = (shape_.cat_mode ? 1 : ncat_) * 32;

    // The host-side buffer graph of the canonical pipeline.
    tip_a_ = {true, arena_.alloc(np_), 0};
    tip_b_ = {true, arena_.alloc(np_), 0};
    partial_a_ = partial();
    partial_b_ = partial();
    partial_c_ = partial();
    if (shape_.cat_mode) cat_ea_ = arena_.alloc(np_ * 4);
    weights_ea_ = arena_.alloc(np_ * 8);
    if (shape_.site_lnl) site_ea_ = arena_.alloc(np_ * 8);
    sumtable_ea_ = arena_.alloc(np_ * pp_);
  }

  cell::Program run() {
    // Tip-first mixed case, matching the kernel contract (a tip child is
    // always child 1): tip-tip, tip-partial, partial-partial.
    newview(tip_a_, tip_b_, partial_a_);
    newview(tip_a_, partial_a_, partial_b_);
    newview(partial_a_, partial_b_, partial_c_);
    evaluate(partial_a_, partial_c_);
    begin_compound();
    sumtable(partial_b_, partial_c_, sumtable_ea_);
    for (int it = 0; it < shape_.newton_iters; ++it)
      nr_derivatives(sumtable_ea_);
    end_compound();
    // The all-branch gradient sweep: one fused edge_gradient invocation per
    // edge, outside any compound, alternating tip and inner outer operands
    // (real trees mix both).
    for (int g = 0; g < shape_.gradient_edges; ++g)
      edge_gradient(g % 2 == 0 ? tip_a_ : partial_a_, partial_c_);
    return std::move(prog_);
  }

  cell::Program run_batch(std::size_t count) {
    // The batcher's fallback conditions (minus the wall-clock host_threads
    // knob, which never changes the op stream): serial per-task newviews.
    if (count <= 1 || ways_ != 1 || !toggles_.offload_newview ||
        device_.spe_count <= 1) {
      for (std::size_t i = 0; i < count; ++i)
        newview(tip_a_, tip_b_, batch_out(i));
      return std::move(prog_);
    }
    // Multi-lane path: task i's payload runs on SPE i % spe_count; lanes
    // drain their task lists independently (lane-major issue order here —
    // any interleaving is equivalent, the lanes share no buffers), then
    // every task records in original task order.
    const int nspe = device_.spe_count;
    const std::uint64_t strip = strip_patterns(pp_);
    const int lanes = std::min<int>(nspe, static_cast<int>(count));
    for (int lane = 0; lane < lanes; ++lane)
      for (std::size_t i = static_cast<std::size_t>(lane); i < count;
           i += static_cast<std::size_t>(nspe))
        newview_payload(lane, tip_a_, tip_b_, batch_out(i), 0, np_, strip);
    for (std::size_t i = 0; i < count; ++i)
      record(KernelKind::kNewview, /*offloaded=*/true, /*ways=*/1,
             static_cast<int>(i) % nspe);
    return std::move(prog_);
  }

 private:
  Operand partial() {
    return Operand{false, arena_.alloc(np_ * pp_), arena_.alloc(np_ * 4)};
  }

  /// Lazily-created output slot for batch task `i` (all tasks share the tip
  /// inputs but write disjoint partials, like distinct tree nodes).
  Operand batch_out(std::size_t i) {
    while (batch_outs_.size() <= i) batch_outs_.push_back(partial());
    return batch_outs_[i];
  }

  std::uint64_t strip_patterns(std::uint64_t pattern_bytes) const {
    return std::max<std::uint64_t>(16,
                                   strip_bytes_ / pattern_bytes / 16 * 16);
  }

  // --- record(): the PPE side of one invocation ---------------------------

  /// offload_ppe_cycles' signaling decision: inside a compound only the
  /// first invocation signals; continuations chain SPE-side.
  bool next_signaled() {
    if (in_compound_ && compound_signaled_) return false;
    if (in_compound_) compound_signaled_ = true;
    return true;
  }

  void begin_compound() {
    in_compound_ = true;
    compound_signaled_ = false;
    sumtable_resident_ = false;
  }

  void end_compound() {
    in_compound_ = false;
    sumtable_resident_ = false;
  }

  /// One record() call: the mailbox round trip (or direct-signal protocol)
  /// per cooperating SPE when the invocation was signaled, then the PPE
  /// join epoch.  `signaled` must come from next_signaled() for offloaded
  /// kernels and be false for PPE-executed ones.
  void record(KernelKind kind, bool signaled, int ways, int base_spe = 0) {
    if (signaled && !toggles_.direct_comm) {
      for (int w = 0; w < ways; ++w) {
        const int spe = base_spe + w;
        prog_.mailbox_write(spe, /*inbound=*/true,
                            static_cast<std::uint32_t>(kind));
        prog_.mailbox_read(spe, /*inbound=*/true);
        prog_.mailbox_write(spe, /*inbound=*/false, 1u);
        prog_.mailbox_read(spe, /*inbound=*/false);
      }
    }
    if (signaled && toggles_.direct_comm) {
      for (int w = 0; w < ways; ++w) {
        const int spe = base_spe + w;
        prog_.signal(spe, cell::SignalOp::kGo);
        prog_.signal(spe, cell::SignalOp::kComplete);
        prog_.signal(spe, cell::SignalOp::kRead);
      }
    }
    prog_.epoch();
  }

  void record(KernelKind kind, bool offloaded, int ways, int base_spe,
              bool) = delete;

  // --- newview ------------------------------------------------------------

  void newview_payload(int spe, const Operand& in1, const Operand& in2,
                       const Operand& out, std::uint64_t lo, std::uint64_t n,
                       std::uint64_t strip) {
    LsAlloc ls(device_.offload_code_bytes);
    const std::uint64_t pm_bytes = ncat_ * 128;
    ls.alloc(pm_bytes);  // pm1 — built in place, no machine events
    ls.alloc(pm_bytes);  // pm2

    const int nbuf = toggles_.double_buffer ? 2 : 1;
    struct Buffers {
      std::uint64_t in1, sc1, in2, sc2, cat, out, outsc;
    };
    Buffers buf[2] = {};
    for (int b = 0; b < nbuf; ++b) {
      buf[b].in1 =
          in1.tip ? ls.alloc(dma_len(strip, 1)) : ls.alloc(strip * pp_);
      buf[b].sc1 = !in1.tip ? ls.alloc(dma_len(strip, 4)) : 0;
      buf[b].in2 =
          in2.tip ? ls.alloc(dma_len(strip, 1)) : ls.alloc(strip * pp_);
      buf[b].sc2 = !in2.tip ? ls.alloc(dma_len(strip, 4)) : 0;
      buf[b].cat = shape_.cat_mode ? ls.alloc(dma_len(strip, 4)) : 0;
      buf[b].out = ls.alloc(strip * pp_);
      buf[b].outsc = ls.alloc(dma_len(strip, 4));
    }
    prog_.ls_reserve(spe, ls.top);

    const std::uint64_t nstrips = (n + strip - 1) / strip;
    const auto issue = [&](std::uint64_t s) {
      const std::uint64_t base = lo + s * strip;
      const std::uint64_t cnt = std::min(strip, lo + n - base);
      const Buffers& b = buf[s % nbuf];
      const int tag = static_cast<int>(s % nbuf);
      if (in1.tip) {
        prog_.dma_get(spe, tag, in1.values + base, b.in1, dma_len(cnt, 1));
      } else {
        prog_.dma_get(spe, tag, in1.values + base * pp_, b.in1, cnt * pp_);
        prog_.dma_get(spe, tag, in1.scale + base * 4, b.sc1,
                      dma_len(cnt, 4));
      }
      if (in2.tip) {
        prog_.dma_get(spe, tag, in2.values + base, b.in2, dma_len(cnt, 1));
      } else {
        prog_.dma_get(spe, tag, in2.values + base * pp_, b.in2, cnt * pp_);
        prog_.dma_get(spe, tag, in2.scale + base * 4, b.sc2,
                      dma_len(cnt, 4));
      }
      if (shape_.cat_mode)
        prog_.dma_get(spe, tag, cat_ea_ + base * 4, b.cat, dma_len(cnt, 4));
    };

    issue(0);
    for (std::uint64_t s = 0; s < nstrips; ++s) {
      if (toggles_.double_buffer) {
        if (s + 1 < nstrips) issue(s + 1);
      } else if (s > 0) {
        issue(s);
      }
      const int tag = static_cast<int>(s % nbuf);
      const int out_tag = 2 + static_cast<int>(s % nbuf);
      prog_.tag_wait(spe, tag);
      if (s >= static_cast<std::uint64_t>(nbuf)) prog_.tag_wait(spe, out_tag);

      const std::uint64_t base = lo + s * strip;
      const std::uint64_t cnt = std::min(strip, lo + n - base);
      const Buffers& b = buf[s % nbuf];

      prog_.ls_read(spe, b.in1, in1.tip ? dma_len(cnt, 1) : cnt * pp_);
      if (!in1.tip) prog_.ls_read(spe, b.sc1, dma_len(cnt, 4));
      prog_.ls_read(spe, b.in2, in2.tip ? dma_len(cnt, 1) : cnt * pp_);
      if (!in2.tip) prog_.ls_read(spe, b.sc2, dma_len(cnt, 4));
      if (shape_.cat_mode) prog_.ls_read(spe, b.cat, dma_len(cnt, 4));
      prog_.ls_write(spe, b.out, cnt * pp_);
      prog_.ls_write(spe, b.outsc, dma_len(cnt, 4));

      prog_.dma_put(spe, out_tag, b.out, out.values + base * pp_, cnt * pp_);
      prog_.dma_put(spe, out_tag, b.outsc, out.scale + base * 4,
                    dma_len(cnt, 4));
    }
    prog_.tag_wait(spe, 2);
    prog_.tag_wait(spe, 3);
  }

  void newview(const Operand& in1, const Operand& in2, const Operand& out) {
    if (!toggles_.offload_newview) {
      record(KernelKind::kNewview, /*signaled=*/false, 1);
      return;
    }
    const std::uint64_t quota = rxc::round_up(
        (np_ + static_cast<std::uint64_t>(ways_) - 1) /
            static_cast<std::uint64_t>(ways_),
        16);
    const std::uint64_t strip = strip_patterns(pp_);
    int active = 0;
    while (active < ways_ &&
           static_cast<std::uint64_t>(active) * quota < np_)
      ++active;
    for (int w = 0; w < active; ++w) {
      const std::uint64_t lo = static_cast<std::uint64_t>(w) * quota;
      const std::uint64_t n = std::min(quota, np_ - lo);
      newview_payload(w, in1, in2, out, lo, n, strip);
    }
    record(KernelKind::kNewview, next_signaled(), ways_);
  }

  // --- evaluate -----------------------------------------------------------

  void evaluate(const Operand& in1, const Operand& in2) {
    if (!toggles_.offload_rest) {
      record(KernelKind::kEvaluate, /*signaled=*/false, 1);
      return;
    }
    const int spe = 0;  // evaluate never loop-parallelizes (ways = 1)
    const std::uint64_t strip = strip_patterns(pp_);
    LsAlloc ls(device_.offload_code_bytes);
    ls.alloc(ncat_ * 128);  // pm
    const std::uint64_t in1b =
        in1.tip ? ls.alloc(dma_len(strip, 1)) : ls.alloc(strip * pp_);
    const std::uint64_t sc1 = !in1.tip ? ls.alloc(dma_len(strip, 4)) : 0;
    const std::uint64_t in2b = ls.alloc(strip * pp_);
    const std::uint64_t sc2 = !in2.tip ? ls.alloc(dma_len(strip, 4)) : 0;
    const std::uint64_t wts = ls.alloc(dma_len(strip, 8));
    const std::uint64_t catb =
        shape_.cat_mode ? ls.alloc(dma_len(strip, 4)) : 0;
    const std::uint64_t site =
        shape_.site_lnl ? ls.alloc(dma_len(strip, 8)) : 0;
    prog_.ls_reserve(spe, ls.top);

    const std::uint64_t nstrips = (np_ + strip - 1) / strip;
    for (std::uint64_t s = 0; s < nstrips; ++s) {
      const std::uint64_t base = s * strip;
      const std::uint64_t cnt = std::min(strip, np_ - base);
      if (in1.tip) {
        prog_.dma_get(spe, 0, in1.values + base, in1b, dma_len(cnt, 1));
      } else {
        prog_.dma_get(spe, 0, in1.values + base * pp_, in1b, cnt * pp_);
        prog_.dma_get(spe, 0, in1.scale + base * 4, sc1, dma_len(cnt, 4));
      }
      prog_.dma_get(spe, 0, in2.values + base * pp_, in2b, cnt * pp_);
      if (!in2.tip)
        prog_.dma_get(spe, 0, in2.scale + base * 4, sc2, dma_len(cnt, 4));
      prog_.dma_get(spe, 0, weights_ea_ + base * 8, wts, dma_len(cnt, 8));
      if (shape_.cat_mode)
        prog_.dma_get(spe, 0, cat_ea_ + base * 4, catb, dma_len(cnt, 4));
      prog_.tag_wait(spe, 0);
      if (shape_.site_lnl && s > 0) prog_.tag_wait(spe, 1);

      prog_.ls_read(spe, in1b, in1.tip ? dma_len(cnt, 1) : cnt * pp_);
      if (!in1.tip) prog_.ls_read(spe, sc1, dma_len(cnt, 4));
      prog_.ls_read(spe, in2b, cnt * pp_);
      if (!in2.tip) prog_.ls_read(spe, sc2, dma_len(cnt, 4));
      prog_.ls_read(spe, wts, dma_len(cnt, 8));
      if (shape_.cat_mode) prog_.ls_read(spe, catb, dma_len(cnt, 4));
      if (shape_.site_lnl) prog_.ls_write(spe, site, dma_len(cnt, 8));

      if (shape_.site_lnl)
        prog_.dma_put(spe, 1, site, site_ea_ + base * 8, dma_len(cnt, 8));
    }
    prog_.tag_wait(spe, 1);
    record(KernelKind::kEvaluate, next_signaled(), 1);
  }

  // --- sumtable + Newton iterations (the makenewz compound) ---------------

  void sumtable(const Operand& in1, const Operand& in2, std::uint64_t out) {
    if (!toggles_.offload_rest) {
      record(KernelKind::kSumtable, /*signaled=*/false, 1);
      return;
    }
    const int spe = 0;
    const std::uint64_t strip = strip_patterns(pp_);
    LsAlloc ls(device_.offload_code_bytes);
    const std::uint64_t in1b =
        in1.tip ? ls.alloc(dma_len(strip, 1)) : ls.alloc(strip * pp_);
    const std::uint64_t in2b = ls.alloc(strip * pp_);
    const std::uint64_t outb = ls.alloc(strip * pp_);
    prog_.ls_reserve(spe, ls.top);

    const std::uint64_t nstrips = (np_ + strip - 1) / strip;
    for (std::uint64_t s = 0; s < nstrips; ++s) {
      const std::uint64_t base = s * strip;
      const std::uint64_t cnt = std::min(strip, np_ - base);
      if (in1.tip) {
        prog_.dma_get(spe, 0, in1.values + base, in1b, dma_len(cnt, 1));
      } else {
        prog_.dma_get(spe, 0, in1.values + base * pp_, in1b, cnt * pp_);
      }
      prog_.dma_get(spe, 0, in2.values + base * pp_, in2b, cnt * pp_);
      prog_.tag_wait(spe, 0);
      if (s > 0) prog_.tag_wait(spe, 1);

      prog_.ls_read(spe, in1b, in1.tip ? dma_len(cnt, 1) : cnt * pp_);
      prog_.ls_read(spe, in2b, cnt * pp_);
      prog_.ls_write(spe, outb, cnt * pp_);

      prog_.dma_put(spe, 1, outb, out + base * pp_, cnt * pp_);
    }
    prog_.tag_wait(spe, 1);

    // §5.2.7: when the whole sumtable (plus weights and categories) fits in
    // the local store, the offloaded makenewz keeps it there and the Newton
    // iterations run DMA-free.
    const std::uint64_t resident_bytes =
        np_ * pp_ + dma_len(np_, 8) + dma_len(np_, 4);
    sumtable_resident_ =
        in_compound_ && resident_bytes + 4096 < device_.ls_data_bytes();
    record(KernelKind::kSumtable, next_signaled(), 1);
  }

  void nr_derivatives(std::uint64_t sumtable_ea) {
    if (!toggles_.offload_rest) {
      record(KernelKind::kNrDerivatives, /*signaled=*/false, 1);
      return;
    }
    if (sumtable_resident_) {
      // Pure SPU compute over the resident sumtable: no DMA, no windows —
      // just the (unsignaled) compound continuation's join.
      record(KernelKind::kNrDerivatives, next_signaled(), 1);
      return;
    }
    const int spe = 0;
    const std::uint64_t strip = strip_patterns(pp_);
    LsAlloc ls(device_.offload_code_bytes);
    const std::uint64_t st = ls.alloc(strip * pp_);
    const std::uint64_t wts = ls.alloc(dma_len(strip, 8));
    const std::uint64_t catb =
        shape_.cat_mode ? ls.alloc(dma_len(strip, 4)) : 0;
    prog_.ls_reserve(spe, ls.top);

    const std::uint64_t nstrips = (np_ + strip - 1) / strip;
    for (std::uint64_t s = 0; s < nstrips; ++s) {
      const std::uint64_t base = s * strip;
      const std::uint64_t cnt = std::min(strip, np_ - base);
      prog_.dma_get(spe, 0, sumtable_ea + base * pp_, st, cnt * pp_);
      prog_.dma_get(spe, 0, weights_ea_ + base * 8, wts, dma_len(cnt, 8));
      if (shape_.cat_mode)
        prog_.dma_get(spe, 0, cat_ea_ + base * 4, catb, dma_len(cnt, 4));
      prog_.tag_wait(spe, 0);

      prog_.ls_read(spe, st, cnt * pp_);
      prog_.ls_read(spe, wts, dma_len(cnt, 8));
      if (shape_.cat_mode) prog_.ls_read(spe, catb, dma_len(cnt, 4));
    }
    record(KernelKind::kNrDerivatives, next_signaled(), 1);
  }

  // --- edge gradient (fused sumtable + derivative accumulation) -----------

  void edge_gradient(const Operand& in1, const Operand& in2) {
    if (!toggles_.offload_rest) {
      record(KernelKind::kEdgeGradient, /*signaled=*/false, 1);
      return;
    }
    const int spe = 0;  // edge_gradient never loop-parallelizes (ways = 1)
    const std::uint64_t strip = strip_patterns(pp_);
    LsAlloc ls(device_.offload_code_bytes);
    const std::uint64_t in1b =
        in1.tip ? ls.alloc(dma_len(strip, 1)) : ls.alloc(strip * pp_);
    const std::uint64_t in2b = ls.alloc(strip * pp_);
    const std::uint64_t wts = ls.alloc(dma_len(strip, 8));
    const std::uint64_t catb =
        shape_.cat_mode ? ls.alloc(dma_len(strip, 4)) : 0;
    prog_.ls_reserve(spe, ls.top);

    const std::uint64_t nstrips = (np_ + strip - 1) / strip;
    for (std::uint64_t s = 0; s < nstrips; ++s) {
      const std::uint64_t base = s * strip;
      const std::uint64_t cnt = std::min(strip, np_ - base);
      if (in1.tip) {
        prog_.dma_get(spe, 0, in1.values + base, in1b, dma_len(cnt, 1));
      } else {
        prog_.dma_get(spe, 0, in1.values + base * pp_, in1b, cnt * pp_);
      }
      prog_.dma_get(spe, 0, in2.values + base * pp_, in2b, cnt * pp_);
      prog_.dma_get(spe, 0, weights_ea_ + base * 8, wts, dma_len(cnt, 8));
      if (shape_.cat_mode)
        prog_.dma_get(spe, 0, cat_ea_ + base * 4, catb, dma_len(cnt, 4));
      prog_.tag_wait(spe, 0);

      // The sumtable slots live in registers and the reduction stays
      // SPE-resident — no puts; only the reduced doubles return with the
      // completion signal.
      prog_.ls_read(spe, in1b, in1.tip ? dma_len(cnt, 1) : cnt * pp_);
      prog_.ls_read(spe, in2b, cnt * pp_);
      prog_.ls_read(spe, wts, dma_len(cnt, 8));
      if (shape_.cat_mode) prog_.ls_read(spe, catb, dma_len(cnt, 4));
    }
    record(KernelKind::kEdgeGradient, next_signaled(), 1);
  }

  cell::DeviceModel device_;
  StageToggles toggles_;
  int ways_ = 1;
  ProgramShape shape_;
  std::uint64_t strip_bytes_ = 2048;

  std::uint64_t np_ = 0;
  std::uint64_t ncat_ = 0;
  std::uint64_t pp_ = 0;

  EaArena arena_;
  Operand tip_a_, tip_b_, partial_a_, partial_b_, partial_c_;
  std::uint64_t cat_ea_ = 0;
  std::uint64_t weights_ea_ = 0;
  std::uint64_t site_ea_ = 0;
  std::uint64_t sumtable_ea_ = 0;
  std::vector<Operand> batch_outs_;

  bool in_compound_ = false;
  bool compound_signaled_ = false;
  bool sumtable_resident_ = false;

  cell::Program prog_;
};

}  // namespace

cell::Program extract_program(const cell::DeviceModel& device, Stage stage,
                              int llp_ways, const ProgramShape& shape,
                              std::size_t strip_bytes) {
  return Extractor(device, stage, llp_ways, shape, strip_bytes).run();
}

cell::Program extract_batch_program(const cell::DeviceModel& device,
                                    Stage stage, std::size_t count,
                                    int llp_ways, const ProgramShape& shape,
                                    std::size_t strip_bytes) {
  return Extractor(device, stage, llp_ways, shape, strip_bytes)
      .run_batch(count);
}

}  // namespace rxc::core
