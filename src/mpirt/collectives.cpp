#include "mpirt/collectives.h"

#include <algorithm>

namespace rxc::mpirt {
namespace {
// Tag space reserved for collectives (point-to-point user tags should stay
// below 1000; master_worker uses 1..4).
constexpr int kTagBcast = 1001;
constexpr int kTagGather = 1002;
constexpr int kTagReduce = 1003;
constexpr int kTagReduceResult = 1004;
}  // namespace

void broadcast(Comm& comm, int rank, int root, std::string& data) {
  RXC_REQUIRE(root >= 0 && root < comm.size(), "broadcast: bad root");
  if (rank == root) {
    for (int r = 0; r < comm.size(); ++r)
      if (r != root) comm.send(root, r, Message::of_string(kTagBcast, data));
  } else {
    data = comm.recv(rank, root, kTagBcast).as_string();
  }
}

std::vector<std::string> gather(Comm& comm, int rank, int root,
                                const std::string& mine) {
  RXC_REQUIRE(root >= 0 && root < comm.size(), "gather: bad root");
  if (rank != root) {
    comm.send(rank, root, Message::of_string(kTagGather, mine));
    return {};
  }
  std::vector<std::string> out(comm.size());
  out[root] = mine;
  for (int received = 0; received < comm.size() - 1; ++received) {
    Message m = comm.recv(root, kAnySource, kTagGather);
    out[m.source] = m.as_string();
  }
  return out;
}

namespace {
double reduce_to_root_and_fan_out(Comm& comm, int rank, double value,
                                  double (*combine)(double, double)) {
  constexpr int root = 0;
  if (rank != root) {
    comm.send(rank, root, Message::of(kTagReduce, value));
    return comm.recv(rank, root, kTagReduceResult).as<double>();
  }
  double acc = value;
  for (int received = 0; received < comm.size() - 1; ++received)
    acc = combine(acc, comm.recv(root, kAnySource, kTagReduce).as<double>());
  for (int r = 1; r < comm.size(); ++r)
    comm.send(root, r, Message::of(kTagReduceResult, acc));
  return acc;
}
}  // namespace

double all_reduce_sum(Comm& comm, int rank, double value) {
  return reduce_to_root_and_fan_out(
      comm, rank, value, [](double a, double b) { return a + b; });
}

double all_reduce_max(Comm& comm, int rank, double value) {
  return reduce_to_root_and_fan_out(
      comm, rank, value, [](double a, double b) { return std::max(a, b); });
}

}  // namespace rxc::mpirt
