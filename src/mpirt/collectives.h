#pragma once
/// \file collectives.h
/// Collective operations over the in-process communicator — the pieces of
/// the MPI surface RAxML's parallel layer uses besides point-to-point:
/// broadcasting the alignment to workers, gathering results, and summing
/// statistics.  All collectives must be called by every rank with matching
/// arguments (as in MPI).

#include <string>
#include <vector>

#include "mpirt/comm.h"

namespace rxc::mpirt {

/// Root's `data` is replicated into every rank's `data`.
void broadcast(Comm& comm, int rank, int root, std::string& data);

/// Gathers every rank's `mine` at `root` (indexed by rank); other ranks
/// get an empty vector.
std::vector<std::string> gather(Comm& comm, int rank, int root,
                                const std::string& mine);

/// Sum of `value` over all ranks, returned to every rank.
double all_reduce_sum(Comm& comm, int rank, double value);

/// Maximum of `value` over all ranks, returned to every rank.
double all_reduce_max(Comm& comm, int rank, double value);

}  // namespace rxc::mpirt
