#include "mpirt/master_worker.h"

#include "obs/metrics.h"
#include "obs/recorder.h"
#include "support/log.h"

namespace rxc::mpirt {
namespace {
// Message tags.
constexpr int kTagRequest = 1;  ///< worker -> master: give me work
constexpr int kTagAssign = 2;   ///< master -> worker: task index
constexpr int kTagStop = 3;     ///< master -> worker: no more work
constexpr int kTagResult = 4;   ///< worker -> master: serialized result

struct ResultHeader {
  std::size_t task;
};
}  // namespace

std::vector<std::string> master_worker_run(
    Comm& comm, int rank, std::size_t ntasks,
    const std::function<std::string(std::size_t)>& work) {
  RXC_REQUIRE(comm.size() >= 2, "master-worker needs >= 2 ranks");

  if (rank == 0) {
    obs::ScopedTimer span("mpirt.master", "mpirt");
    log_debug("mpirt master: " + std::to_string(ntasks) + " tasks over " +
              std::to_string(comm.size() - 1) + " workers");
    static obs::Counter& assigned = obs::counter("mpirt.tasks_assigned");
    std::vector<std::string> results(ntasks);
    std::size_t next = 0;
    std::size_t done = 0;
    int stopped = 0;
    const int workers = comm.size() - 1;
    while (done < ntasks || stopped < workers) {
      Message msg = comm.recv(0);
      if (msg.tag == kTagRequest) {
        if (next < ntasks) {
          comm.send(0, msg.source, Message::of(kTagAssign, next));
          assigned.add();
          ++next;
        } else {
          comm.send(0, msg.source, Message::of(kTagStop, 0));
          ++stopped;
        }
      } else if (msg.tag == kTagResult) {
        // Payload: ResultHeader followed by the serialized result.
        RXC_REQUIRE(msg.payload.size() >= sizeof(ResultHeader),
                    "short result message");
        ResultHeader header;
        std::memcpy(&header, msg.payload.data(), sizeof header);
        RXC_REQUIRE(header.task < ntasks, "result for unknown task");
        results[header.task].assign(
            reinterpret_cast<const char*>(msg.payload.data()) + sizeof header,
            msg.payload.size() - sizeof header);
        ++done;
      } else {
        throw Error("master received unexpected tag " +
                    std::to_string(msg.tag));
      }
    }
    return results;
  }

  // Worker loop: request, compute, return.
  for (;;) {
    comm.send(rank, 0, Message::of(kTagRequest, rank));
    const Message msg = comm.recv(rank, 0);
    if (msg.tag == kTagStop) break;
    RXC_REQUIRE(msg.tag == kTagAssign, "worker expected an assignment");
    const std::size_t task = msg.as<std::size_t>();
    std::string result;
    {
      obs::ScopedTimer task_span("mpirt.worker_task", "mpirt");
      result = work(task);
    }
    log_debug("mpirt worker " + std::to_string(rank) + ": task " +
              std::to_string(task) + " done");

    Message reply;
    reply.tag = kTagResult;
    reply.payload.resize(sizeof(ResultHeader) + result.size());
    const ResultHeader header{task};
    std::memcpy(reply.payload.data(), &header, sizeof header);
    std::memcpy(reply.payload.data() + sizeof header, result.data(),
                result.size());
    comm.send(rank, 0, std::move(reply));
  }
  return {};
}

}  // namespace rxc::mpirt
