#pragma once
/// \file master_worker.h
/// The master-worker skeleton RAxML uses for bootstraps and multiple
/// inferences: rank 0 hands out task indices on demand; workers compute and
/// return serialized results.  Dynamic (pull-based) distribution, so uneven
/// task durations balance automatically.

#include <functional>
#include <string>
#include <vector>

#include "mpirt/comm.h"

namespace rxc::mpirt {

/// Runs `ntasks` units over `comm`'s worker ranks (1..size-1).  Each worker
/// calls `work(task_index)` and ships the returned string back; the master
/// collects results in task order.  Must be called from EVERY rank with the
/// same arguments; returns the full result vector on rank 0 and an empty
/// vector elsewhere.  Requires comm.size() >= 2.
std::vector<std::string> master_worker_run(
    Comm& comm, int rank, std::size_t ntasks,
    const std::function<std::string(std::size_t)>& work);

}  // namespace rxc::mpirt
