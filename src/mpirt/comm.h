#pragma once
/// \file comm.h
/// In-process message-passing runtime with MPI-like semantics.
///
/// RAxML's parallel layer is an MPI master-worker (paper §3.1); this module
/// reproduces that structure with ranks as threads and typed point-to-point
/// messages, so the library's parallel analyses run anywhere without an MPI
/// installation.  Only the primitives RAxML uses are provided: blocking
/// send/recv with tags and wildcard receive, plus a barrier.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "support/error.h"

namespace rxc::mpirt {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Message {
  int source = -1;
  int tag = 0;
  std::vector<std::byte> payload;

  /// Serialize a trivially copyable value into the payload.
  template <class T>
  static Message of(int tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    Message m;
    m.tag = tag;
    m.payload.resize(sizeof(T));
    std::memcpy(m.payload.data(), &value, sizeof(T));
    return m;
  }
  static Message of_string(int tag, const std::string& s);

  template <class T>
  T as() const {
    static_assert(std::is_trivially_copyable_v<T>);
    RXC_REQUIRE(payload.size() == sizeof(T), "message payload size mismatch");
    T value;
    std::memcpy(&value, payload.data(), sizeof(T));
    return value;
  }
  std::string as_string() const;
};

/// Shared communicator: one inbox per rank.
class Comm {
public:
  explicit Comm(int nranks);

  int size() const { return static_cast<int>(inboxes_.size()); }

  /// Blocking-enqueue (never blocks: inboxes are unbounded).
  void send(int from, int to, Message message);

  /// Blocking receive with optional source/tag filters.
  Message recv(int rank, int source = kAnySource, int tag = kAnyTag);

  /// Non-blocking probe+receive; returns false if no matching message.
  bool try_recv(int rank, Message& out, int source = kAnySource,
                int tag = kAnyTag);

  /// All ranks must call; releases when the size()-th arrives.
  void barrier();

private:
  struct Inbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
  };
  bool match_and_pop(Inbox& inbox, Message& out, int source, int tag);

  std::vector<std::unique_ptr<Inbox>> inboxes_;
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;
};

/// Spawns `nranks` threads running `rank_main(rank, comm)` and joins them.
/// Exceptions from any rank are collected and rethrown (first one wins).
void run_ranks(int nranks, const std::function<void(int, Comm&)>& rank_main);

}  // namespace rxc::mpirt
