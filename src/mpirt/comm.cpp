#include "mpirt/comm.h"

#include <thread>

namespace rxc::mpirt {

Message Message::of_string(int tag, const std::string& s) {
  Message m;
  m.tag = tag;
  m.payload.resize(s.size());
  std::memcpy(m.payload.data(), s.data(), s.size());
  return m;
}

std::string Message::as_string() const {
  return {reinterpret_cast<const char*>(payload.data()), payload.size()};
}

Comm::Comm(int nranks) {
  RXC_REQUIRE(nranks >= 1, "communicator needs at least one rank");
  inboxes_.reserve(nranks);
  for (int i = 0; i < nranks; ++i)
    inboxes_.push_back(std::make_unique<Inbox>());
}

void Comm::send(int from, int to, Message message) {
  RXC_REQUIRE(to >= 0 && to < size(), "send: bad destination rank");
  RXC_REQUIRE(from >= 0 && from < size(), "send: bad source rank");
  message.source = from;
  Inbox& inbox = *inboxes_[to];
  {
    std::lock_guard lock(inbox.mutex);
    inbox.queue.push_back(std::move(message));
  }
  inbox.cv.notify_all();
}

bool Comm::match_and_pop(Inbox& inbox, Message& out, int source, int tag) {
  for (auto it = inbox.queue.begin(); it != inbox.queue.end(); ++it) {
    if ((source == kAnySource || it->source == source) &&
        (tag == kAnyTag || it->tag == tag)) {
      out = std::move(*it);
      inbox.queue.erase(it);
      return true;
    }
  }
  return false;
}

Message Comm::recv(int rank, int source, int tag) {
  RXC_REQUIRE(rank >= 0 && rank < size(), "recv: bad rank");
  Inbox& inbox = *inboxes_[rank];
  std::unique_lock lock(inbox.mutex);
  Message out;
  inbox.cv.wait(lock, [&] { return match_and_pop(inbox, out, source, tag); });
  return out;
}

bool Comm::try_recv(int rank, Message& out, int source, int tag) {
  RXC_REQUIRE(rank >= 0 && rank < size(), "try_recv: bad rank");
  Inbox& inbox = *inboxes_[rank];
  std::lock_guard lock(inbox.mutex);
  return match_and_pop(inbox, out, source, tag);
}

void Comm::barrier() {
  std::unique_lock lock(barrier_mutex_);
  const std::uint64_t generation = barrier_generation_;
  if (++barrier_arrived_ == size()) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock, [&] { return barrier_generation_ != generation; });
}

void run_ranks(int nranks, const std::function<void(int, Comm&)>& rank_main) {
  Comm comm(nranks);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(nranks);
  threads.reserve(nranks);
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        rank_main(r, comm);
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace rxc::mpirt
