#include "platform/platform.h"

#include <algorithm>

#include "support/error.h"

namespace rxc::platform {

PlatformParams power5() {
  PlatformParams p;
  p.name = "IBM Power5";
  p.clock_hz = 1.65e9;
  p.contexts = 4;
  p.threads_per_core = 2;
  p.smt_factor = 1.35;
  // Effective costs calibrated so a 4-context Power5 trails the Cell by the
  // paper's ~9-10% on the multi-bootstrap series (OoO dual-issue FPU with
  // fused madd sustains well under 1 cycle/flop on these kernels).
  p.dp_flop_cycles = 0.67;
  p.exp_cycles = 105.0;
  p.log_cycles = 115.0;
  p.cond_cycles = 5.5;
  p.mem_cycles_per_pattern = 16.0;
  return p;
}

PlatformParams xeon() {
  PlatformParams p;
  p.name = "2x Intel Xeon (HT)";
  p.clock_hz = 2.0e9;
  p.contexts = 4;  // two chips x two HT contexts (the paper's setup)
  p.threads_per_core = 2;
  p.smt_factor = 1.75;  // NetBurst HT gains little on FP-dense code
  p.dp_flop_cycles = 1.32;
  p.exp_cycles = 195.0;
  p.log_cycles = 216.0;
  p.cond_cycles = 15.3;  // long-pipeline mispredicts
  p.mem_cycles_per_pattern = 34.7;
  return p;
}

double task_cycles(const PlatformParams& p, const lh::KernelCounters& c,
                   std::size_t np, int ncat) {
  const double dnp = static_cast<double>(np);
  // FP work mirrors the kernel definitions (see core/spe_executor.cpp).
  const double flops =
      static_cast<double>(c.pmatrix_builds) * ncat * 112.0 +
      static_cast<double>(c.newview_patterns) * 56.0 +
      static_cast<double>(c.evaluate_calls) * dnp * 36.0 +
      static_cast<double>(c.sumtable_calls) * dnp * 64.0 +
      static_cast<double>(c.nr_calls) * dnp * 24.0;
  const double logs =
      static_cast<double>(c.evaluate_calls + c.nr_calls) * dnp;
  const double conds = static_cast<double>(c.newview_patterns);
  const double mems =
      static_cast<double>(c.newview_patterns) +
      static_cast<double>(c.evaluate_calls + c.sumtable_calls + c.nr_calls) *
          dnp;
  return flops * p.dp_flop_cycles +
         static_cast<double>(c.exp_calls) * p.exp_cycles +
         logs * p.log_cycles + conds * p.cond_cycles +
         mems * p.mem_cycles_per_pattern;
}

double schedule_makespan(const PlatformParams& p,
                         const std::vector<double>& task_seconds) {
  RXC_REQUIRE(p.contexts >= 1, "platform needs contexts");
  std::vector<double> free_at(p.contexts, 0.0);
  // SMT penalty: with fewer concurrent tasks than cores, threads run alone.
  const int cores = std::max(1, p.contexts / p.threads_per_core);
  const bool smt_active = static_cast<int>(task_seconds.size()) > cores;
  const double factor = smt_active ? p.smt_factor : 1.0;
  for (const double t : task_seconds) {
    auto it = std::min_element(free_at.begin(), free_at.end());
    *it += t * factor;
  }
  return *std::max_element(free_at.begin(), free_at.end());
}

}  // namespace rxc::platform
