#pragma once
/// \file platform.h
/// Host-processor models for the paper's §6 comparison (Figure 3): the same
/// analysis run with MPI on an IBM Power5 (dual-core, 2-way SMT each =
/// 4 contexts @ 1.65 GHz) and on two Intel Xeon processors with
/// HyperThreading (2 chips x 2 contexts @ 2 GHz).  A task's duration is
/// derived from the kernel work it performed (KernelCounters), priced with
/// per-platform op costs; tasks are list-scheduled onto the contexts with
/// an SMT throughput penalty.
///
/// Like the Cell cost model, the constants target *relative* behavior: the
/// paper reports Cell beating the Power5 by ~9-10% and the two Xeons by
/// more than a factor of two on this workload.

#include <string>
#include <vector>

#include "likelihood/kernels.h"

namespace rxc::platform {

struct PlatformParams {
  std::string name;
  double clock_hz = 2.0e9;
  int contexts = 4;       ///< schedulable hardware threads
  int threads_per_core = 2;
  /// Each thread runs this factor slower when its core's threads are all
  /// busy (1.0 = perfect SMT).
  double smt_factor = 1.4;

  // Per-operation costs (cycles).
  double dp_flop_cycles = 1.0;
  double exp_cycles = 200.0;
  double log_cycles = 220.0;
  double cond_cycles = 10.0;
  double mem_cycles_per_pattern = 30.0;
};

/// IBM Power5: 1.65 GHz, OoO dual-core with strong caches (1.92 MB L2 +
/// 36 MB L3) — low effective per-op costs.
PlatformParams power5();

/// Intel Pentium 4 Xeon (NetBurst), 2 GHz, HT: long pipeline, small L1,
/// poor branchy-FP behavior, weak SMT gain on FP code.
PlatformParams xeon();

/// Cycles one task costs on `p`, derived from its kernel work.
/// `np`/`ncat` describe the workload (patterns, rate categories).
double task_cycles(const PlatformParams& p, const lh::KernelCounters& c,
                   std::size_t np, int ncat);

/// Greedy list schedule of `task_seconds` onto the platform's contexts with
/// the SMT penalty applied while sibling threads are busy (approximated as
/// always-on when more tasks than cores remain).  Returns the makespan.
double schedule_makespan(const PlatformParams& p,
                         const std::vector<double>& task_seconds);

}  // namespace rxc::platform
