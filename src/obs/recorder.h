#pragma once
/// \file recorder.h
/// Flight-recorder span store: the "when" half of the observability layer.
/// Two timelines share one event buffer:
///
///   * kWall    — real time, microseconds since obs::configure().  Lanes
///                (Chrome `tid`s) are assigned per OS thread in first-use
///                order.  Emitted by RAII ScopedTimer and record_* calls in
///                the engine, search, executors and mpirt.
///   * kVirtual — the simulator's virtual-cycle clock converted to
///                microseconds at the modeled 3.2 GHz.  Lanes follow the
///                machine: PPE hardware threads 0..1, SPE i at
///                kLaneSpeBase + i.  Emitted by the trace-replay scheduler,
///                which is the one place segment start times exist.
///
/// Events are recorded only in json mode (obs::tracing()); the buffer is
/// bounded by Config::max_events and overflow increments the
/// "obs.dropped_events" counter instead of growing without limit.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace rxc::obs {

enum class Timeline { kWall, kVirtual };

/// Virtual-timeline lane assignments (Chrome `tid` within the virtual pid).
inline constexpr int kLanePpe0 = 0;
inline constexpr int kLanePpe1 = 1;
inline constexpr int kLaneSpeBase = 8;  ///< SPE i renders as lane 8 + i

struct TraceEvent {
  Timeline timeline = Timeline::kWall;
  char ph = 'X';    ///< 'X' complete span, 'i' instant
  std::string name;
  std::string cat;
  int tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;  ///< spans only
  std::string args;     ///< pre-rendered JSON object ("{...}") or empty
};

/// True while spans are being recorded (json mode).  Mirrors obs::tracing();
/// redeclared here so recorder users need only this header.
inline bool recording() {
  return detail::g_mode.load(std::memory_order_relaxed) == 2;
}

/// Appends a complete span / instant to the buffer (no-op unless recording).
void record_span(Timeline tl, std::string name, std::string cat, int tid,
                 double ts_us, double dur_us, std::string args = {});
void record_instant(Timeline tl, std::string name, std::string cat, int tid,
                    double ts_us, std::string args = {});

/// Wall-clock helpers: microseconds since the recorder epoch (reset by
/// obs::configure()) and the calling thread's wall lane.
double wall_now_us();
int wall_lane();

/// Instant on the wall timeline at "now", on the calling thread's lane.
void mark(std::string name, std::string cat, std::string args = {});

/// RAII wall-clock span: opens at construction, closes at destruction.
/// Costs two branches when not recording.  Name/category must be literals
/// or otherwise outlive the timer.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name, const char* cat = "wall")
      : name_(name), cat_(cat), t0_(recording() ? wall_now_us() : -1.0) {}
  ~ScopedTimer() {
    if (t0_ >= 0.0)
      record_span(Timeline::kWall, name_, cat_, wall_lane(), t0_,
                  wall_now_us() - t0_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  const char* cat_;
  double t0_;
};

/// Copy of the buffered events, in record order.
std::vector<TraceEvent> snapshot_events();

/// Drops all buffered events and re-anchors the wall epoch to "now".
/// Called by obs::configure().
void reset_recorder();

std::size_t event_count();

}  // namespace rxc::obs
