#pragma once
/// \file metrics.h
/// Process-wide metrics registry: named counters, gauges and histograms
/// with lock-free hot paths.  The registry is the "always cheap" half of
/// the flight recorder (obs.h): every increment is guarded by one relaxed
/// atomic load of the global mode, so with RXC_TRACE unset the cost is a
/// load + predicted branch — no locks, no allocation, no syscalls.
///
/// Handles returned by counter()/gauge()/histogram() are stable for the
/// life of the process; hot call sites cache them:
///
///     static obs::Counter& c = obs::counter("kernel.newview.calls");
///     c.add();
///
/// Names are dotted paths (subsystem.object.metric); the summary printer
/// and the Chrome exporter sort by name, so related metrics group together.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace rxc::obs {

namespace detail {
/// Global mode as an int (obs::Mode); 0 = off.  Defined in obs.cpp.
extern std::atomic<int> g_mode;
/// Flight-recorder buffer bound, mirrored atomically from Config so the
/// recorder's hot path never reads the mutex-guarded Config concurrently
/// with configure() (a TSan-visible race otherwise).  Defined in obs.cpp.
extern std::atomic<std::size_t> g_max_events;
inline bool metrics_on() {
  return g_mode.load(std::memory_order_relaxed) != 0;
}
/// Relaxed CAS add for pre-C++20-style atomic doubles.
inline void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}
}  // namespace detail

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (detail::metrics_on()) v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) {
    if (detail::metrics_on()) v_.store(v, std::memory_order_relaxed);
  }
  void add(double v) {
    if (detail::metrics_on()) detail::atomic_add(v_, v);
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Power-of-two-bucketed histogram over non-negative samples.  Bucket i
/// holds samples in [2^(i-1), 2^i) (bucket 0: [0, 1)); count/sum/min/max
/// are tracked exactly, so summaries report true totals while the buckets
/// give the shape.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(double v);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const { return min_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n ? sum() / static_cast<double>(n) : 0.0;
  }
  std::uint64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }
  /// Index of the bucket a sample lands in.
  static int bucket_index(double v);

  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

/// Lookup-or-create by name.  Registering the same name as two different
/// metric kinds throws rxc::Error.  The returned reference never moves.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

struct CounterSnapshot {
  std::string name;
  std::uint64_t value;
};
struct GaugeSnapshot {
  std::string name;
  double value;
};
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count;
  double sum, min, max;
};
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;    ///< sorted by name
  std::vector<GaugeSnapshot> gauges;        ///< sorted by name
  std::vector<HistogramSnapshot> histograms;  ///< sorted by name
};

/// Point-in-time copy of every registered metric (sorted by name).
MetricsSnapshot snapshot_metrics();

/// Zeroes every registered metric (registrations survive; handles stay
/// valid).  Called by obs::configure().
void reset_metrics();

}  // namespace rxc::obs
