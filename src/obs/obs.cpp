#include "obs/obs.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>

#include "support/error.h"
#include "support/json.h"
#include "support/log.h"

namespace rxc::obs {

namespace {

std::mutex g_config_mutex;
Config g_config;
bool g_flushed = false;
std::once_flag g_env_once;

LogLevel parse_log_level(const std::string& value) {
  if (value == "debug") return LogLevel::kDebug;
  if (value == "info") return LogLevel::kInfo;
  if (value == "warn") return LogLevel::kWarn;
  if (value == "error") return LogLevel::kError;
  throw Error("RXC_LOG: expected debug|info|warn|error, got '" + value + "'");
}

}  // namespace

Config parse_trace_config(const std::string& value) {
  Config cfg;
  if (value.empty() || value == "off") {
    cfg.mode = Mode::kOff;
  } else if (value == "summary") {
    cfg.mode = Mode::kSummary;
  } else if (value == "json" || value.rfind("json:", 0) == 0) {
    cfg.mode = Mode::kJson;
    if (value.size() > 5) cfg.json_path = value.substr(5);
  } else {
    throw Error("RXC_TRACE: expected off|summary|json[:<path>], got '" +
                value + "'");
  }
  return cfg;
}

void configure(const Config& cfg) {
  std::lock_guard<std::mutex> lock(g_config_mutex);
  g_config = cfg;
  g_flushed = false;
  reset_metrics();
  reset_recorder();
  detail::g_max_events.store(cfg.max_events, std::memory_order_relaxed);
  detail::g_mode.store(static_cast<int>(cfg.mode),
                       std::memory_order_relaxed);
}

const Config& config() { return g_config; }

void init_from_env() {
  std::call_once(g_env_once, [] {
    if (const char* lv = std::getenv("RXC_LOG"); lv && *lv)
      set_log_level(parse_log_level(lv));
    const char* tv = std::getenv("RXC_TRACE");
    if (!tv || !*tv) return;
    const Config cfg = parse_trace_config(tv);
    if (cfg.mode == Mode::kOff) return;
    configure(cfg);
    std::atexit([] { flush(); });
  });
}

std::string summary_text() {
  const MetricsSnapshot snap = snapshot_metrics();
  std::ostringstream os;
  for (const auto& c : snap.counters)
    if (c.value) os << c.name << " = " << c.value << "\n";
  for (const auto& g : snap.gauges)
    if (g.value != 0.0) os << g.name << " = " << g.value << "\n";
  for (const auto& h : snap.histograms)
    if (h.count)
      os << h.name << ": n=" << h.count << " sum=" << h.sum
         << " min=" << h.min << " max=" << h.max
         << " mean=" << h.sum / static_cast<double>(h.count) << "\n";
  return os.str();
}

std::string chrome_trace_json() {
  const std::vector<TraceEvent> events = snapshot_events();
  const MetricsSnapshot snap = snapshot_metrics();

  constexpr int kWallPid = 1, kVirtualPid = 2;
  JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();

  auto metadata = [&w](int pid, int tid, const char* what,
                       const std::string& name) {
    w.begin_object();
    w.kv("ph", "M").kv("pid", pid).kv("tid", tid).kv("name", what);
    w.key("args").begin_object().kv("name", name).end_object();
    w.end_object();
  };
  metadata(kWallPid, 0, "process_name", "wall");
  metadata(kVirtualPid, 0, "process_name", "cell-virtual");

  // Name every lane that actually appears, so Perfetto shows "PPE.T0" /
  // "SPE 3" instead of bare tids.
  std::set<int> virtual_lanes, wall_lanes;
  for (const TraceEvent& e : events)
    (e.timeline == Timeline::kVirtual ? virtual_lanes : wall_lanes)
        .insert(e.tid);
  for (const int tid : wall_lanes)
    metadata(kWallPid, tid, "thread_name",
             "thread " + std::to_string(tid));
  for (const int tid : virtual_lanes) {
    std::string name;
    if (tid == kLanePpe0 || tid == kLanePpe1)
      name = "PPE.T" + std::to_string(tid);
    else if (tid >= kLaneSpeBase)
      name = "SPE " + std::to_string(tid - kLaneSpeBase);
    else
      name = "lane " + std::to_string(tid);
    metadata(kVirtualPid, tid, "thread_name", name);
  }

  double end_ts = 0.0;
  for (const TraceEvent& e : events) {
    end_ts = std::max(end_ts, e.ts_us + e.dur_us);
    w.begin_object();
    w.kv("name", e.name).kv("cat", e.cat);
    w.key("ph").value(std::string_view(&e.ph, 1));
    w.kv("pid", e.timeline == Timeline::kWall ? kWallPid : kVirtualPid);
    w.kv("tid", e.tid).kv("ts", e.ts_us);
    if (e.ph == 'X') w.kv("dur", e.dur_us);
    if (e.ph == 'i') w.kv("s", "t");  // thread-scoped instant
    if (!e.args.empty()) w.key("args").raw(e.args);
    w.end_object();
  }

  // Final counter values as Chrome counter tracks: one sample at the end of
  // the trace per non-zero metric.
  for (const auto& c : snap.counters) {
    if (!c.value) continue;
    w.begin_object();
    w.kv("name", c.name).kv("ph", "C").kv("pid", kWallPid).kv("tid", 0);
    w.kv("ts", end_ts);
    w.key("args").begin_object().kv("value", c.value).end_object();
    w.end_object();
  }

  w.end_array();
  w.end_object();
  return w.str();
}

bool flush() {
  Config cfg;
  {
    std::lock_guard<std::mutex> lock(g_config_mutex);
    if (g_flushed || g_config.mode == Mode::kOff) return true;
    g_flushed = true;
    cfg = g_config;
  }
  if (cfg.mode == Mode::kSummary) {
    // The summary was explicitly requested, so it bypasses the log level
    // (which defaults to warn and would swallow a diagnostic-level report).
    std::fprintf(stderr, "--- obs summary (RXC_TRACE=summary) ---\n%s",
                 summary_text().c_str());
    return true;
  }
  const std::string json = chrome_trace_json();
  std::ofstream out(cfg.json_path, std::ios::binary);
  if (!out) {
    log_error("obs: cannot write trace to '" + cfg.json_path + "'");
    return false;
  }
  out << json;
  out.close();
  log_info("obs: wrote Chrome trace (" + std::to_string(json.size()) +
           " bytes, " + std::to_string(event_count()) + " events) to " +
           cfg.json_path);
  return true;
}

}  // namespace rxc::obs
