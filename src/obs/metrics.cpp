#include "obs/metrics.h"

#include <bit>
#include <map>
#include <memory>
#include <mutex>

#include "support/error.h"
#include "support/thread_pool.h"

namespace rxc::obs {

namespace detail {
std::atomic<int> g_mode{0};
std::atomic<std::size_t> g_max_events{1u << 20};
}  // namespace detail

int Histogram::bucket_index(double v) {
  if (!(v >= 1.0)) return 0;  // negatives and NaN land in bucket 0
  const std::uint64_t u =
      v >= 9.0e18 ? ~std::uint64_t{0} : static_cast<std::uint64_t>(v);
  return std::min(kBuckets - 1, static_cast<int>(std::bit_width(u)));
}

void Histogram::observe(double v) {
  if (!detail::metrics_on()) return;
  const std::uint64_t before =
      count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, v);
  buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
  // min/max races on the very first sample are tolerable (diagnostics, not
  // accounting), but seed them so min() isn't stuck at 0 for positive data.
  if (before == 0) {
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
    return;
  }
  double cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

namespace {

/// One map per kind; std::map keeps snapshots name-sorted for free, and
/// unique_ptr keeps handles stable across rehash-free inserts.
struct Registry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: outlives static destructors
  return *r;
}

void check_unique_kind(const Registry& r, const std::string& name,
                      const void* self_map) {
  int kinds = 0;
  kinds += (&r.counters == self_map || !r.counters.count(name)) ? 0 : 1;
  kinds += (&r.gauges == self_map || !r.gauges.count(name)) ? 0 : 1;
  kinds += (&r.histograms == self_map || !r.histograms.count(name)) ? 0 : 1;
  RXC_REQUIRE(kinds == 0,
              "obs metric '" + name + "' already registered as another kind");
}

/// Bridges support/thread_pool's utilization samples into the registry
/// (support sits below obs, so the pool can't name obs::counter itself).
/// Handles are resolved once; the registry's function-local singleton makes
/// this safe even if a pool runs during static init.
void pool_metric_sink(PoolMetric m, std::uint64_t n) {
  static Counter& jobs = counter("pool.jobs");
  static Counter& inline_jobs = counter("pool.inline_jobs");
  static Counter& items = counter("pool.items");
  static Counter& steals = counter("pool.steals");
  static Counter& idle = counter("pool.idle_wakeups");
  static Gauge& threads = gauge("pool.threads");
  switch (m) {
    case PoolMetric::kJobs: jobs.add(n); break;
    case PoolMetric::kInlineJobs: inline_jobs.add(n); break;
    case PoolMetric::kItems: items.add(n); break;
    case PoolMetric::kSteals: steals.add(n); break;
    case PoolMetric::kIdleWakeups: idle.add(n); break;
    case PoolMetric::kThreads: threads.set(static_cast<double>(n)); break;
  }
}

/// Installed at load time of any binary linking the registry; binaries
/// without obs simply leave the pool's sink null.
const bool g_pool_sink_installed = [] {
  set_pool_metric_sink(&pool_metric_sink);
  return true;
}();

}  // namespace

Counter& counter(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.counters.find(name);
  if (it == r.counters.end()) {
    check_unique_kind(r, name, &r.counters);
    it = r.counters.emplace(name, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& gauge(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.gauges.find(name);
  if (it == r.gauges.end()) {
    check_unique_kind(r, name, &r.gauges);
    it = r.gauges.emplace(name, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& histogram(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.histograms.find(name);
  if (it == r.histograms.end()) {
    check_unique_kind(r, name, &r.histograms);
    it = r.histograms.emplace(name, std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

MetricsSnapshot snapshot_metrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  MetricsSnapshot s;
  s.counters.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters)
    s.counters.push_back({name, c->value()});
  s.gauges.reserve(r.gauges.size());
  for (const auto& [name, g] : r.gauges)
    s.gauges.push_back({name, g->value()});
  s.histograms.reserve(r.histograms.size());
  for (const auto& [name, h] : r.histograms)
    s.histograms.push_back({name, h->count(), h->sum(), h->min(), h->max()});
  return s;
}

void reset_metrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& [name, c] : r.counters) c->reset();
  for (auto& [name, g] : r.gauges) g->reset();
  for (auto& [name, h] : r.histograms) h->reset();
}

}  // namespace rxc::obs
