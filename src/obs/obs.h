#pragma once
/// \file obs.h
/// Observability switchboard: configuration, env-var wiring, and the
/// Chrome trace-event exporter.
///
/// Modes (env var `RXC_TRACE`, or programmatic configure()):
///   off           — everything compiles to near-no-ops (one relaxed load
///                   per would-be increment); the default.
///   summary       — metrics are collected and a sorted summary is written
///                   through the leveled logger (support/log.h) at flush,
///                   so it interleaves coherently with other diagnostics.
///   json[:<path>] — metrics plus the flight recorder; flush writes a
///                   Chrome trace-event JSON file (default rxc_trace.json)
///                   loadable in chrome://tracing or Perfetto, containing
///                   BOTH timelines: wall-clock spans (pid "wall") and the
///                   simulator's virtual-cycle timeline (pid
///                   "cell-virtual": per-SPE busy / dma-stall /
///                   mailbox-wait spans and PPE thread occupancy).
///
/// `RXC_LOG=debug|info|warn|error` rides along: init_from_env() forwards it
/// to rxc::set_log_level so one knob pair controls all diagnostics.

#include <string>

#include "obs/metrics.h"
#include "obs/recorder.h"

namespace rxc::obs {

enum class Mode { kOff = 0, kSummary = 1, kJson = 2 };

struct Config {
  Mode mode = Mode::kOff;
  std::string json_path = "rxc_trace.json";  ///< used in kJson mode
  std::size_t max_events = 1u << 20;  ///< flight-recorder buffer bound
};

/// Parses an RXC_TRACE value: "off", "summary", "json" or "json:<path>".
/// Throws rxc::Error on anything else.
Config parse_trace_config(const std::string& value);

/// Installs `cfg`, zeroing all metrics and the event buffer so a run
/// traces from a clean slate.  Thread-compatible: call before spawning
/// workers.
void configure(const Config& cfg);

const Config& config();

inline bool enabled() {
  return detail::g_mode.load(std::memory_order_relaxed) != 0;
}
/// Spans recorded (json mode).
inline bool tracing() {
  return detail::g_mode.load(std::memory_order_relaxed) == 2;
}

/// Reads RXC_TRACE / RXC_LOG once per process and configures accordingly;
/// registers an atexit flush when a mode is enabled.  Safe and cheap to
/// call repeatedly (the engine constructor calls it), so every binary that
/// computes a likelihood honours the env vars without its own wiring.
void init_from_env();

/// Multi-line, name-sorted rendering of every non-zero metric.
std::string summary_text();

/// Renders both timelines plus final counter tracks as a Chrome
/// trace-event JSON document.
std::string chrome_trace_json();

/// Writes the configured output (summary -> log, json -> file).  Idempotent
/// per configure(); returns false if a json write failed.
bool flush();

}  // namespace rxc::obs
