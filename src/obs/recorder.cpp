#include "obs/recorder.h"

#include <chrono>
#include <mutex>

#include "obs/obs.h"

namespace rxc::obs {

namespace {

using Clock = std::chrono::steady_clock;

struct EventStore {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  Clock::time_point epoch = Clock::now();
  std::atomic<int> next_lane{0};
};

EventStore& store() {
  static EventStore* s = new EventStore;  // leaked: usable from atexit
  return *s;
}

void push(TraceEvent&& e) {
  EventStore& s = store();
  std::lock_guard<std::mutex> lock(s.mutex);
  // Read the bound through its atomic mirror: config() itself is guarded by
  // a different mutex and may be mid-write in configure().
  if (s.events.size() >=
      detail::g_max_events.load(std::memory_order_relaxed)) {
    static Counter& dropped = counter("obs.dropped_events");
    dropped.add();
    return;
  }
  s.events.push_back(std::move(e));
}

}  // namespace

void record_span(Timeline tl, std::string name, std::string cat, int tid,
                 double ts_us, double dur_us, std::string args) {
  if (!recording()) return;
  TraceEvent e;
  e.timeline = tl;
  e.ph = 'X';
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.tid = tid;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.args = std::move(args);
  push(std::move(e));
}

void record_instant(Timeline tl, std::string name, std::string cat, int tid,
                    double ts_us, std::string args) {
  if (!recording()) return;
  TraceEvent e;
  e.timeline = tl;
  e.ph = 'i';
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.tid = tid;
  e.ts_us = ts_us;
  e.args = std::move(args);
  push(std::move(e));
}

double wall_now_us() {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   store().epoch)
      .count();
}

int wall_lane() {
  thread_local int lane =
      store().next_lane.fetch_add(1, std::memory_order_relaxed);
  return lane;
}

void mark(std::string name, std::string cat, std::string args) {
  if (!recording()) return;
  record_instant(Timeline::kWall, std::move(name), std::move(cat),
                 wall_lane(), wall_now_us(), std::move(args));
}

std::vector<TraceEvent> snapshot_events() {
  EventStore& s = store();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.events;
}

void reset_recorder() {
  EventStore& s = store();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.events.clear();
  s.epoch = Clock::now();
}

std::size_t event_count() {
  EventStore& s = store();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.events.size();
}

}  // namespace rxc::obs
