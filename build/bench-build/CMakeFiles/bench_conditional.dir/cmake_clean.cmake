file(REMOVE_RECURSE
  "../bench/bench_conditional"
  "../bench/bench_conditional.pdb"
  "CMakeFiles/bench_conditional.dir/bench_conditional.cpp.o"
  "CMakeFiles/bench_conditional.dir/bench_conditional.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conditional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
