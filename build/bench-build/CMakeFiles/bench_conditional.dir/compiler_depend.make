# Empty compiler generated dependencies file for bench_conditional.
# This may be replaced when dependencies are built.
