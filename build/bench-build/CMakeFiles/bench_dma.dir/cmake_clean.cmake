file(REMOVE_RECURSE
  "../bench/bench_dma"
  "../bench/bench_dma.pdb"
  "CMakeFiles/bench_dma.dir/bench_dma.cpp.o"
  "CMakeFiles/bench_dma.dir/bench_dma.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
