file(REMOVE_RECURSE
  "../bench/bench_table8"
  "../bench/bench_table8.pdb"
  "CMakeFiles/bench_table8.dir/bench_table8.cpp.o"
  "CMakeFiles/bench_table8.dir/bench_table8.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
