file(REMOVE_RECURSE
  "../bench/bench_table5"
  "../bench/bench_table5.pdb"
  "CMakeFiles/bench_table5.dir/bench_table5.cpp.o"
  "CMakeFiles/bench_table5.dir/bench_table5.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
