# Empty compiler generated dependencies file for bench_exp.
# This may be replaced when dependencies are built.
