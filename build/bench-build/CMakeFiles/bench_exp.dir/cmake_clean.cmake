file(REMOVE_RECURSE
  "../bench/bench_exp"
  "../bench/bench_exp.pdb"
  "CMakeFiles/bench_exp.dir/bench_exp.cpp.o"
  "CMakeFiles/bench_exp.dir/bench_exp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
