file(REMOVE_RECURSE
  "../bench/bench_table7"
  "../bench/bench_table7.pdb"
  "CMakeFiles/bench_table7.dir/bench_table7.cpp.o"
  "CMakeFiles/bench_table7.dir/bench_table7.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
