file(REMOVE_RECURSE
  "../bench/bench_smp"
  "../bench/bench_smp.pdb"
  "CMakeFiles/bench_smp.dir/bench_smp.cpp.o"
  "CMakeFiles/bench_smp.dir/bench_smp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
