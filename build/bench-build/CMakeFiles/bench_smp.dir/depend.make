# Empty dependencies file for bench_smp.
# This may be replaced when dependencies are built.
