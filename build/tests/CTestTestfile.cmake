# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_seq[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_tree[1]_include.cmake")
include("/root/repo/build/tests/test_likelihood[1]_include.cmake")
include("/root/repo/build/tests/test_search[1]_include.cmake")
include("/root/repo/build/tests/test_mpirt[1]_include.cmake")
include("/root/repo/build/tests/test_cell[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_platform[1]_include.cmake")
include("/root/repo/build/tests/test_protein[1]_include.cmake")
include("/root/repo/build/tests/test_param_sweeps[1]_include.cmake")
include("/root/repo/build/tests/test_analysis_tools[1]_include.cmake")
include("/root/repo/build/tests/test_threaded[1]_include.cmake")
include("/root/repo/build/tests/test_checkpoint[1]_include.cmake")
include("/root/repo/build/tests/test_partitioned[1]_include.cmake")
