file(REMOVE_RECURSE
  "CMakeFiles/test_partitioned.dir/test_partitioned.cpp.o"
  "CMakeFiles/test_partitioned.dir/test_partitioned.cpp.o.d"
  "test_partitioned"
  "test_partitioned.pdb"
  "test_partitioned[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partitioned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
