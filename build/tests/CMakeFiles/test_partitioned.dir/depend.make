# Empty dependencies file for test_partitioned.
# This may be replaced when dependencies are built.
