# Empty dependencies file for test_mpirt.
# This may be replaced when dependencies are built.
