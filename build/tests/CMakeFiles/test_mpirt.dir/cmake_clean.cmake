file(REMOVE_RECURSE
  "CMakeFiles/test_mpirt.dir/test_mpirt.cpp.o"
  "CMakeFiles/test_mpirt.dir/test_mpirt.cpp.o.d"
  "test_mpirt"
  "test_mpirt.pdb"
  "test_mpirt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpirt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
