# Empty compiler generated dependencies file for test_analysis_tools.
# This may be replaced when dependencies are built.
