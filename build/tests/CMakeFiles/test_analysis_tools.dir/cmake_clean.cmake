file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_tools.dir/test_analysis_tools.cpp.o"
  "CMakeFiles/test_analysis_tools.dir/test_analysis_tools.cpp.o.d"
  "test_analysis_tools"
  "test_analysis_tools.pdb"
  "test_analysis_tools[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
