# Empty compiler generated dependencies file for test_protein.
# This may be replaced when dependencies are built.
