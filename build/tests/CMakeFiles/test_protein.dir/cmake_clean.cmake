file(REMOVE_RECURSE
  "CMakeFiles/test_protein.dir/test_protein.cpp.o"
  "CMakeFiles/test_protein.dir/test_protein.cpp.o.d"
  "test_protein"
  "test_protein.pdb"
  "test_protein[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protein.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
