# Empty compiler generated dependencies file for rxc_support.
# This may be replaced when dependencies are built.
