file(REMOVE_RECURSE
  "CMakeFiles/rxc_support.dir/support/error.cpp.o"
  "CMakeFiles/rxc_support.dir/support/error.cpp.o.d"
  "CMakeFiles/rxc_support.dir/support/log.cpp.o"
  "CMakeFiles/rxc_support.dir/support/log.cpp.o.d"
  "CMakeFiles/rxc_support.dir/support/options.cpp.o"
  "CMakeFiles/rxc_support.dir/support/options.cpp.o.d"
  "CMakeFiles/rxc_support.dir/support/rng.cpp.o"
  "CMakeFiles/rxc_support.dir/support/rng.cpp.o.d"
  "CMakeFiles/rxc_support.dir/support/str.cpp.o"
  "CMakeFiles/rxc_support.dir/support/str.cpp.o.d"
  "CMakeFiles/rxc_support.dir/support/thread_pool.cpp.o"
  "CMakeFiles/rxc_support.dir/support/thread_pool.cpp.o.d"
  "librxc_support.a"
  "librxc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rxc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
