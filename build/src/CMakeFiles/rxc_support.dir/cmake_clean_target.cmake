file(REMOVE_RECURSE
  "librxc_support.a"
)
