# Empty dependencies file for rxc_platform.
# This may be replaced when dependencies are built.
