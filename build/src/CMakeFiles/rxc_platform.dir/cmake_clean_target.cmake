file(REMOVE_RECURSE
  "librxc_platform.a"
)
