file(REMOVE_RECURSE
  "CMakeFiles/rxc_platform.dir/platform/platform.cpp.o"
  "CMakeFiles/rxc_platform.dir/platform/platform.cpp.o.d"
  "librxc_platform.a"
  "librxc_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rxc_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
