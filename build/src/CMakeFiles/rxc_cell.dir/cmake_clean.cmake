file(REMOVE_RECURSE
  "CMakeFiles/rxc_cell.dir/cell/local_store.cpp.o"
  "CMakeFiles/rxc_cell.dir/cell/local_store.cpp.o.d"
  "CMakeFiles/rxc_cell.dir/cell/mfc.cpp.o"
  "CMakeFiles/rxc_cell.dir/cell/mfc.cpp.o.d"
  "librxc_cell.a"
  "librxc_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rxc_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
