file(REMOVE_RECURSE
  "librxc_cell.a"
)
