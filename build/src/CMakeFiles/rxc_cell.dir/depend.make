# Empty dependencies file for rxc_cell.
# This may be replaced when dependencies are built.
