file(REMOVE_RECURSE
  "CMakeFiles/rxc_likelihood.dir/likelihood/engine.cpp.o"
  "CMakeFiles/rxc_likelihood.dir/likelihood/engine.cpp.o.d"
  "CMakeFiles/rxc_likelihood.dir/likelihood/executor.cpp.o"
  "CMakeFiles/rxc_likelihood.dir/likelihood/executor.cpp.o.d"
  "CMakeFiles/rxc_likelihood.dir/likelihood/fast_exp.cpp.o"
  "CMakeFiles/rxc_likelihood.dir/likelihood/fast_exp.cpp.o.d"
  "CMakeFiles/rxc_likelihood.dir/likelihood/kernels.cpp.o"
  "CMakeFiles/rxc_likelihood.dir/likelihood/kernels.cpp.o.d"
  "CMakeFiles/rxc_likelihood.dir/likelihood/kernels_nstate.cpp.o"
  "CMakeFiles/rxc_likelihood.dir/likelihood/kernels_nstate.cpp.o.d"
  "CMakeFiles/rxc_likelihood.dir/likelihood/kernels_simd.cpp.o"
  "CMakeFiles/rxc_likelihood.dir/likelihood/kernels_simd.cpp.o.d"
  "CMakeFiles/rxc_likelihood.dir/likelihood/partitioned_engine.cpp.o"
  "CMakeFiles/rxc_likelihood.dir/likelihood/partitioned_engine.cpp.o.d"
  "CMakeFiles/rxc_likelihood.dir/likelihood/protein_engine.cpp.o"
  "CMakeFiles/rxc_likelihood.dir/likelihood/protein_engine.cpp.o.d"
  "CMakeFiles/rxc_likelihood.dir/likelihood/threaded_executor.cpp.o"
  "CMakeFiles/rxc_likelihood.dir/likelihood/threaded_executor.cpp.o.d"
  "librxc_likelihood.a"
  "librxc_likelihood.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rxc_likelihood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
