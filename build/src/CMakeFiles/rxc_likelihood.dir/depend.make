# Empty dependencies file for rxc_likelihood.
# This may be replaced when dependencies are built.
