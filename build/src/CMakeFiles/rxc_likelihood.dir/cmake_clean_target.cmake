file(REMOVE_RECURSE
  "librxc_likelihood.a"
)
