
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/likelihood/engine.cpp" "src/CMakeFiles/rxc_likelihood.dir/likelihood/engine.cpp.o" "gcc" "src/CMakeFiles/rxc_likelihood.dir/likelihood/engine.cpp.o.d"
  "/root/repo/src/likelihood/executor.cpp" "src/CMakeFiles/rxc_likelihood.dir/likelihood/executor.cpp.o" "gcc" "src/CMakeFiles/rxc_likelihood.dir/likelihood/executor.cpp.o.d"
  "/root/repo/src/likelihood/fast_exp.cpp" "src/CMakeFiles/rxc_likelihood.dir/likelihood/fast_exp.cpp.o" "gcc" "src/CMakeFiles/rxc_likelihood.dir/likelihood/fast_exp.cpp.o.d"
  "/root/repo/src/likelihood/kernels.cpp" "src/CMakeFiles/rxc_likelihood.dir/likelihood/kernels.cpp.o" "gcc" "src/CMakeFiles/rxc_likelihood.dir/likelihood/kernels.cpp.o.d"
  "/root/repo/src/likelihood/kernels_nstate.cpp" "src/CMakeFiles/rxc_likelihood.dir/likelihood/kernels_nstate.cpp.o" "gcc" "src/CMakeFiles/rxc_likelihood.dir/likelihood/kernels_nstate.cpp.o.d"
  "/root/repo/src/likelihood/kernels_simd.cpp" "src/CMakeFiles/rxc_likelihood.dir/likelihood/kernels_simd.cpp.o" "gcc" "src/CMakeFiles/rxc_likelihood.dir/likelihood/kernels_simd.cpp.o.d"
  "/root/repo/src/likelihood/partitioned_engine.cpp" "src/CMakeFiles/rxc_likelihood.dir/likelihood/partitioned_engine.cpp.o" "gcc" "src/CMakeFiles/rxc_likelihood.dir/likelihood/partitioned_engine.cpp.o.d"
  "/root/repo/src/likelihood/protein_engine.cpp" "src/CMakeFiles/rxc_likelihood.dir/likelihood/protein_engine.cpp.o" "gcc" "src/CMakeFiles/rxc_likelihood.dir/likelihood/protein_engine.cpp.o.d"
  "/root/repo/src/likelihood/threaded_executor.cpp" "src/CMakeFiles/rxc_likelihood.dir/likelihood/threaded_executor.cpp.o" "gcc" "src/CMakeFiles/rxc_likelihood.dir/likelihood/threaded_executor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rxc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rxc_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rxc_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rxc_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rxc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
