
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpirt/collectives.cpp" "src/CMakeFiles/rxc_mpirt.dir/mpirt/collectives.cpp.o" "gcc" "src/CMakeFiles/rxc_mpirt.dir/mpirt/collectives.cpp.o.d"
  "/root/repo/src/mpirt/comm.cpp" "src/CMakeFiles/rxc_mpirt.dir/mpirt/comm.cpp.o" "gcc" "src/CMakeFiles/rxc_mpirt.dir/mpirt/comm.cpp.o.d"
  "/root/repo/src/mpirt/master_worker.cpp" "src/CMakeFiles/rxc_mpirt.dir/mpirt/master_worker.cpp.o" "gcc" "src/CMakeFiles/rxc_mpirt.dir/mpirt/master_worker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rxc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
