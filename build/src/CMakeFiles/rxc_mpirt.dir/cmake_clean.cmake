file(REMOVE_RECURSE
  "CMakeFiles/rxc_mpirt.dir/mpirt/collectives.cpp.o"
  "CMakeFiles/rxc_mpirt.dir/mpirt/collectives.cpp.o.d"
  "CMakeFiles/rxc_mpirt.dir/mpirt/comm.cpp.o"
  "CMakeFiles/rxc_mpirt.dir/mpirt/comm.cpp.o.d"
  "CMakeFiles/rxc_mpirt.dir/mpirt/master_worker.cpp.o"
  "CMakeFiles/rxc_mpirt.dir/mpirt/master_worker.cpp.o.d"
  "librxc_mpirt.a"
  "librxc_mpirt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rxc_mpirt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
