file(REMOVE_RECURSE
  "librxc_mpirt.a"
)
