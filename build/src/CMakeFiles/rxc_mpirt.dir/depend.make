# Empty dependencies file for rxc_mpirt.
# This may be replaced when dependencies are built.
