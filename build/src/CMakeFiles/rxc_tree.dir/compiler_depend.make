# Empty compiler generated dependencies file for rxc_tree.
# This may be replaced when dependencies are built.
