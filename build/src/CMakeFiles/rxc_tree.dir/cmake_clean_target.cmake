file(REMOVE_RECURSE
  "librxc_tree.a"
)
