
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tree/consensus.cpp" "src/CMakeFiles/rxc_tree.dir/tree/consensus.cpp.o" "gcc" "src/CMakeFiles/rxc_tree.dir/tree/consensus.cpp.o.d"
  "/root/repo/src/tree/moves.cpp" "src/CMakeFiles/rxc_tree.dir/tree/moves.cpp.o" "gcc" "src/CMakeFiles/rxc_tree.dir/tree/moves.cpp.o.d"
  "/root/repo/src/tree/parsimony.cpp" "src/CMakeFiles/rxc_tree.dir/tree/parsimony.cpp.o" "gcc" "src/CMakeFiles/rxc_tree.dir/tree/parsimony.cpp.o.d"
  "/root/repo/src/tree/render.cpp" "src/CMakeFiles/rxc_tree.dir/tree/render.cpp.o" "gcc" "src/CMakeFiles/rxc_tree.dir/tree/render.cpp.o.d"
  "/root/repo/src/tree/tree.cpp" "src/CMakeFiles/rxc_tree.dir/tree/tree.cpp.o" "gcc" "src/CMakeFiles/rxc_tree.dir/tree/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rxc_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rxc_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rxc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rxc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
