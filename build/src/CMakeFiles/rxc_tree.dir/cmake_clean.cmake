file(REMOVE_RECURSE
  "CMakeFiles/rxc_tree.dir/tree/consensus.cpp.o"
  "CMakeFiles/rxc_tree.dir/tree/consensus.cpp.o.d"
  "CMakeFiles/rxc_tree.dir/tree/moves.cpp.o"
  "CMakeFiles/rxc_tree.dir/tree/moves.cpp.o.d"
  "CMakeFiles/rxc_tree.dir/tree/parsimony.cpp.o"
  "CMakeFiles/rxc_tree.dir/tree/parsimony.cpp.o.d"
  "CMakeFiles/rxc_tree.dir/tree/render.cpp.o"
  "CMakeFiles/rxc_tree.dir/tree/render.cpp.o.d"
  "CMakeFiles/rxc_tree.dir/tree/tree.cpp.o"
  "CMakeFiles/rxc_tree.dir/tree/tree.cpp.o.d"
  "librxc_tree.a"
  "librxc_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rxc_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
