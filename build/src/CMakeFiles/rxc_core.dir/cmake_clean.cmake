file(REMOVE_RECURSE
  "CMakeFiles/rxc_core.dir/core/port.cpp.o"
  "CMakeFiles/rxc_core.dir/core/port.cpp.o.d"
  "CMakeFiles/rxc_core.dir/core/scheduler.cpp.o"
  "CMakeFiles/rxc_core.dir/core/scheduler.cpp.o.d"
  "CMakeFiles/rxc_core.dir/core/spe_executor.cpp.o"
  "CMakeFiles/rxc_core.dir/core/spe_executor.cpp.o.d"
  "librxc_core.a"
  "librxc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rxc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
