file(REMOVE_RECURSE
  "librxc_core.a"
)
