# Empty compiler generated dependencies file for rxc_core.
# This may be replaced when dependencies are built.
