# Empty dependencies file for rxc_model.
# This may be replaced when dependencies are built.
