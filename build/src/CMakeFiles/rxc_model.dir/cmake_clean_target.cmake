file(REMOVE_RECURSE
  "librxc_model.a"
)
