
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/aa_model.cpp" "src/CMakeFiles/rxc_model.dir/model/aa_model.cpp.o" "gcc" "src/CMakeFiles/rxc_model.dir/model/aa_model.cpp.o.d"
  "/root/repo/src/model/dna_model.cpp" "src/CMakeFiles/rxc_model.dir/model/dna_model.cpp.o" "gcc" "src/CMakeFiles/rxc_model.dir/model/dna_model.cpp.o.d"
  "/root/repo/src/model/eigen_n.cpp" "src/CMakeFiles/rxc_model.dir/model/eigen_n.cpp.o" "gcc" "src/CMakeFiles/rxc_model.dir/model/eigen_n.cpp.o.d"
  "/root/repo/src/model/gamma_math.cpp" "src/CMakeFiles/rxc_model.dir/model/gamma_math.cpp.o" "gcc" "src/CMakeFiles/rxc_model.dir/model/gamma_math.cpp.o.d"
  "/root/repo/src/model/matrix4.cpp" "src/CMakeFiles/rxc_model.dir/model/matrix4.cpp.o" "gcc" "src/CMakeFiles/rxc_model.dir/model/matrix4.cpp.o.d"
  "/root/repo/src/model/rates.cpp" "src/CMakeFiles/rxc_model.dir/model/rates.cpp.o" "gcc" "src/CMakeFiles/rxc_model.dir/model/rates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rxc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
