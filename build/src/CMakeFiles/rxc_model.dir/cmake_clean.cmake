file(REMOVE_RECURSE
  "CMakeFiles/rxc_model.dir/model/aa_model.cpp.o"
  "CMakeFiles/rxc_model.dir/model/aa_model.cpp.o.d"
  "CMakeFiles/rxc_model.dir/model/dna_model.cpp.o"
  "CMakeFiles/rxc_model.dir/model/dna_model.cpp.o.d"
  "CMakeFiles/rxc_model.dir/model/eigen_n.cpp.o"
  "CMakeFiles/rxc_model.dir/model/eigen_n.cpp.o.d"
  "CMakeFiles/rxc_model.dir/model/gamma_math.cpp.o"
  "CMakeFiles/rxc_model.dir/model/gamma_math.cpp.o.d"
  "CMakeFiles/rxc_model.dir/model/matrix4.cpp.o"
  "CMakeFiles/rxc_model.dir/model/matrix4.cpp.o.d"
  "CMakeFiles/rxc_model.dir/model/rates.cpp.o"
  "CMakeFiles/rxc_model.dir/model/rates.cpp.o.d"
  "librxc_model.a"
  "librxc_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rxc_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
