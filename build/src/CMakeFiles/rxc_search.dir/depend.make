# Empty dependencies file for rxc_search.
# This may be replaced when dependencies are built.
