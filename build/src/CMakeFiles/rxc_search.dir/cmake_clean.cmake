file(REMOVE_RECURSE
  "CMakeFiles/rxc_search.dir/search/analysis.cpp.o"
  "CMakeFiles/rxc_search.dir/search/analysis.cpp.o.d"
  "CMakeFiles/rxc_search.dir/search/checkpoint.cpp.o"
  "CMakeFiles/rxc_search.dir/search/checkpoint.cpp.o.d"
  "CMakeFiles/rxc_search.dir/search/model_opt.cpp.o"
  "CMakeFiles/rxc_search.dir/search/model_opt.cpp.o.d"
  "CMakeFiles/rxc_search.dir/search/partitioned_search.cpp.o"
  "CMakeFiles/rxc_search.dir/search/partitioned_search.cpp.o.d"
  "CMakeFiles/rxc_search.dir/search/protein_search.cpp.o"
  "CMakeFiles/rxc_search.dir/search/protein_search.cpp.o.d"
  "CMakeFiles/rxc_search.dir/search/search.cpp.o"
  "CMakeFiles/rxc_search.dir/search/search.cpp.o.d"
  "librxc_search.a"
  "librxc_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rxc_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
