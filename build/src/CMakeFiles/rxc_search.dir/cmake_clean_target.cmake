file(REMOVE_RECURSE
  "librxc_search.a"
)
