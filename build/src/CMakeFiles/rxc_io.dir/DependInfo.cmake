
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/fasta.cpp" "src/CMakeFiles/rxc_io.dir/io/fasta.cpp.o" "gcc" "src/CMakeFiles/rxc_io.dir/io/fasta.cpp.o.d"
  "/root/repo/src/io/newick.cpp" "src/CMakeFiles/rxc_io.dir/io/newick.cpp.o" "gcc" "src/CMakeFiles/rxc_io.dir/io/newick.cpp.o.d"
  "/root/repo/src/io/phylip.cpp" "src/CMakeFiles/rxc_io.dir/io/phylip.cpp.o" "gcc" "src/CMakeFiles/rxc_io.dir/io/phylip.cpp.o.d"
  "/root/repo/src/io/tree_list.cpp" "src/CMakeFiles/rxc_io.dir/io/tree_list.cpp.o" "gcc" "src/CMakeFiles/rxc_io.dir/io/tree_list.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rxc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
