file(REMOVE_RECURSE
  "CMakeFiles/rxc_io.dir/io/fasta.cpp.o"
  "CMakeFiles/rxc_io.dir/io/fasta.cpp.o.d"
  "CMakeFiles/rxc_io.dir/io/newick.cpp.o"
  "CMakeFiles/rxc_io.dir/io/newick.cpp.o.d"
  "CMakeFiles/rxc_io.dir/io/phylip.cpp.o"
  "CMakeFiles/rxc_io.dir/io/phylip.cpp.o.d"
  "CMakeFiles/rxc_io.dir/io/tree_list.cpp.o"
  "CMakeFiles/rxc_io.dir/io/tree_list.cpp.o.d"
  "librxc_io.a"
  "librxc_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rxc_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
