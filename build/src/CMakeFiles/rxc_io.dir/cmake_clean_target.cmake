file(REMOVE_RECURSE
  "librxc_io.a"
)
