# Empty dependencies file for rxc_io.
# This may be replaced when dependencies are built.
