
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seq/aa_alignment.cpp" "src/CMakeFiles/rxc_seq.dir/seq/aa_alignment.cpp.o" "gcc" "src/CMakeFiles/rxc_seq.dir/seq/aa_alignment.cpp.o.d"
  "/root/repo/src/seq/alignment.cpp" "src/CMakeFiles/rxc_seq.dir/seq/alignment.cpp.o" "gcc" "src/CMakeFiles/rxc_seq.dir/seq/alignment.cpp.o.d"
  "/root/repo/src/seq/bootstrap.cpp" "src/CMakeFiles/rxc_seq.dir/seq/bootstrap.cpp.o" "gcc" "src/CMakeFiles/rxc_seq.dir/seq/bootstrap.cpp.o.d"
  "/root/repo/src/seq/patterns.cpp" "src/CMakeFiles/rxc_seq.dir/seq/patterns.cpp.o" "gcc" "src/CMakeFiles/rxc_seq.dir/seq/patterns.cpp.o.d"
  "/root/repo/src/seq/seqgen.cpp" "src/CMakeFiles/rxc_seq.dir/seq/seqgen.cpp.o" "gcc" "src/CMakeFiles/rxc_seq.dir/seq/seqgen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rxc_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rxc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rxc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
