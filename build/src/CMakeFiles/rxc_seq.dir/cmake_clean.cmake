file(REMOVE_RECURSE
  "CMakeFiles/rxc_seq.dir/seq/aa_alignment.cpp.o"
  "CMakeFiles/rxc_seq.dir/seq/aa_alignment.cpp.o.d"
  "CMakeFiles/rxc_seq.dir/seq/alignment.cpp.o"
  "CMakeFiles/rxc_seq.dir/seq/alignment.cpp.o.d"
  "CMakeFiles/rxc_seq.dir/seq/bootstrap.cpp.o"
  "CMakeFiles/rxc_seq.dir/seq/bootstrap.cpp.o.d"
  "CMakeFiles/rxc_seq.dir/seq/patterns.cpp.o"
  "CMakeFiles/rxc_seq.dir/seq/patterns.cpp.o.d"
  "CMakeFiles/rxc_seq.dir/seq/seqgen.cpp.o"
  "CMakeFiles/rxc_seq.dir/seq/seqgen.cpp.o.d"
  "librxc_seq.a"
  "librxc_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rxc_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
