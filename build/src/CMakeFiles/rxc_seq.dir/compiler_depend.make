# Empty compiler generated dependencies file for rxc_seq.
# This may be replaced when dependencies are built.
