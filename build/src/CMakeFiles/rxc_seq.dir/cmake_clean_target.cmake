file(REMOVE_RECURSE
  "librxc_seq.a"
)
