file(REMOVE_RECURSE
  "CMakeFiles/raxml_cell.dir/raxml_cell.cpp.o"
  "CMakeFiles/raxml_cell.dir/raxml_cell.cpp.o.d"
  "raxml_cell"
  "raxml_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raxml_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
