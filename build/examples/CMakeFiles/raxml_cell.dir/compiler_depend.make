# Empty compiler generated dependencies file for raxml_cell.
# This may be replaced when dependencies are built.
