# Empty compiler generated dependencies file for multigene.
# This may be replaced when dependencies are built.
