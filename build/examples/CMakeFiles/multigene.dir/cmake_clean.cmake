file(REMOVE_RECURSE
  "CMakeFiles/multigene.dir/multigene.cpp.o"
  "CMakeFiles/multigene.dir/multigene.cpp.o.d"
  "multigene"
  "multigene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multigene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
