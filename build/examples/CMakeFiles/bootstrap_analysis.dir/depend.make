# Empty dependencies file for bootstrap_analysis.
# This may be replaced when dependencies are built.
