file(REMOVE_RECURSE
  "CMakeFiles/bootstrap_analysis.dir/bootstrap_analysis.cpp.o"
  "CMakeFiles/bootstrap_analysis.dir/bootstrap_analysis.cpp.o.d"
  "bootstrap_analysis"
  "bootstrap_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bootstrap_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
