file(REMOVE_RECURSE
  "CMakeFiles/primates.dir/primates.cpp.o"
  "CMakeFiles/primates.dir/primates.cpp.o.d"
  "primates"
  "primates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
