# Empty dependencies file for primates.
# This may be replaced when dependencies are built.
