# Empty compiler generated dependencies file for protein_phylogeny.
# This may be replaced when dependencies are built.
