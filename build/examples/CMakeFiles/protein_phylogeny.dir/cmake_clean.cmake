file(REMOVE_RECURSE
  "CMakeFiles/protein_phylogeny.dir/protein_phylogeny.cpp.o"
  "CMakeFiles/protein_phylogeny.dir/protein_phylogeny.cpp.o.d"
  "protein_phylogeny"
  "protein_phylogeny.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protein_phylogeny.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
