# Empty compiler generated dependencies file for cell_port_demo.
# This may be replaced when dependencies are built.
