file(REMOVE_RECURSE
  "CMakeFiles/cell_port_demo.dir/cell_port_demo.cpp.o"
  "CMakeFiles/cell_port_demo.dir/cell_port_demo.cpp.o.d"
  "cell_port_demo"
  "cell_port_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_port_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
